//! HTTP file servers + an ApacheBench-like load generator.
//!
//! One engine, two paper workloads:
//!
//! * **Lighttpd** (Fig. 5/Table 4): single worker, shielded in the
//!   enclave, serving 10 KB files to `ab` — the large response copies
//!   make syscall-redirect the dominant overhead source.
//! * **NGINX** (Fig. 6/Table 5 and the §9.1 background benchmark):
//!   two workers, audited by kaudit / VeilS-LOG.
//!
//! The protocol is a faithful HTTP/1.0 subset: request line parsing,
//! Content-Length response headers, 404s for missing files.

use crate::driver::Driver;
use crate::{fnv1a, Workload, WorkloadStats};
use veil_crypto::Drbg;
use veil_os::error::Errno;
use veil_os::sys::{Fd, OpenFlags, Sys};

/// Lighttpd per-request server compute (parsing, routing, logging,
/// event loop) — the dominant native cost.
pub const LIGHTTPD_REQUEST_CYCLES: u64 = 460_000;

/// NGINX per-request compute (heavier config, access logging, two
/// workers' coordination).
pub const NGINX_REQUEST_CYCLES: u64 = 1_050_000;

/// Client-side compute per request (ab bookkeeping).
pub const CLIENT_CYCLES: u64 = 60_000;

/// Parses `GET <path> HTTP/1.x`, returning the path.
pub fn parse_request(req: &[u8]) -> Option<&str> {
    let text = std::str::from_utf8(req).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    Some(path)
}

/// Builds a response header.
pub fn response_header(status: u16, body_len: usize) -> String {
    let text = match status {
        200 => "OK",
        404 => "Not Found",
        _ => "Error",
    };
    format!("HTTP/1.0 {status} {text}\r\nContent-Length: {body_len}\r\nServer: veil-httpd\r\n\r\n")
}

/// Serves exactly one connection: read request, map path to `/www`,
/// respond. Returns bytes sent.
pub fn serve_connection(sys: &mut dyn Sys, conn: Fd, request_cycles: u64) -> Result<usize, Errno> {
    let mut req = [0u8; 512];
    let n = sys.recv(conn, &mut req)?;
    sys.burn(request_cycles);
    let (status, body) = match parse_request(&req[..n]) {
        Some(path) => {
            let fs_path = format!("/www{path}");
            match sys.open(&fs_path, OpenFlags::rdonly()) {
                Ok(fd) => {
                    let size = sys.fstat(fd)?.size as usize;
                    let mut body = vec![0u8; size];
                    sys.read(fd, &mut body)?;
                    sys.close(fd)?;
                    (200u16, body)
                }
                Err(_) => (404, b"not found".to_vec()),
            }
        }
        None => (404, b"bad request".to_vec()),
    };
    let header = response_header(status, body.len());
    let mut sent = sys.send(conn, header.as_bytes())?;
    sent += sys.send(conn, &body)?;
    sys.close(conn)?;
    Ok(sent)
}

/// The web-server workload: N requests for a file of `file_size` bytes,
/// driven ab-style. `workers` only scales the modelled server compute
/// (the simulation is single-threaded).
#[derive(Debug, Clone)]
pub struct HttpWorkload {
    /// Which paper program this instance models.
    pub label: &'static str,
    /// Requests to serve (paper: 10,000).
    pub requests: usize,
    /// Served file size (paper: 10 KB).
    pub file_size: usize,
    /// Worker threads (lighttpd: 1, nginx: 2).
    pub workers: u32,
    /// Listening port.
    pub port: u16,
    /// Per-request server compute.
    pub request_cycles: u64,
}

impl HttpWorkload {
    /// The Fig. 5 lighttpd configuration (scaled request count).
    pub fn lighttpd(requests: usize) -> Self {
        HttpWorkload {
            label: "Lighttpd",
            requests,
            file_size: 10 * 1024,
            workers: 1,
            port: 8080,
            request_cycles: LIGHTTPD_REQUEST_CYCLES,
        }
    }

    /// The Fig. 6 nginx configuration.
    pub fn nginx(requests: usize) -> Self {
        HttpWorkload {
            label: "NGINX",
            requests,
            file_size: 10 * 1024,
            workers: 2,
            port: 8090,
            request_cycles: NGINX_REQUEST_CYCLES,
        }
    }
}

impl Workload for HttpWorkload {
    fn name(&self) -> &'static str {
        self.label
    }

    fn run(&mut self, driver: &mut dyn Driver) -> Result<WorkloadStats, Errno> {
        let (requests, file_size, port, workers) =
            (self.requests, self.file_size, self.port, self.workers);
        let request_cycles = self.request_cycles;
        // Untrusted setup: document root + content.
        driver.untrusted(&mut |sys| {
            let mut drbg = Drbg::from_seed(b"www-content");
            let mut body = vec![0u8; file_size];
            drbg.fill(&mut body);
            // Mildly compressible content like a real page.
            for b in body.iter_mut().step_by(3) {
                *b = b'a';
            }
            let fd = sys.open("/www/index.html", OpenFlags::wronly_create_trunc())?;
            sys.write(fd, &body)?;
            sys.close(fd)
        })?;

        // Shielded: server socket setup.
        let server_fd = std::cell::Cell::new(-1);
        driver.shielded(&mut |sys| {
            let fd = sys.socket()?;
            sys.bind(fd, port)?;
            sys.listen(fd)?;
            server_fd.set(fd);
            Ok(())
        })?;

        let mut stats = WorkloadStats::default();
        let client_fd = std::cell::Cell::new(-1);
        for i in 0..requests {
            // ab: connect + send request (untrusted).
            driver.untrusted(&mut |sys| {
                let c = sys.socket()?;
                sys.connect(c, port)?;
                sys.burn(CLIENT_CYCLES);
                sys.send(c, b"GET /index.html HTTP/1.0\r\nUser-Agent: ab\r\n\r\n")?;
                client_fd.set(c);
                Ok(())
            })?;
            // Server: accept + serve (shielded).
            let srv = server_fd.get();
            let mut served = 0usize;
            driver.shielded(&mut |sys| {
                let conn = sys.accept(srv)?;
                // Scale for the extra worker capacity (amortized).
                if workers > 1 {
                    sys.burn(request_cycles / (2 * workers as u64));
                }
                served = serve_connection(sys, conn, request_cycles)?;
                Ok(())
            })?;
            // ab: drain the response, verify status (untrusted).
            driver.untrusted(&mut |sys| {
                let c = client_fd.get();
                let mut buf = vec![0u8; file_size + 256];
                let mut got = 0usize;
                loop {
                    match sys.recv(c, &mut buf[got..]) {
                        Ok(0) => break,
                        Ok(n) => got += n,
                        Err(Errno::EAGAIN) => break,
                        Err(e) => return Err(e),
                    }
                    if got == buf.len() {
                        break;
                    }
                }
                if !buf.starts_with(b"HTTP/1.0 200 OK") {
                    return Err(Errno::EIO);
                }
                stats.checksum = fnv1a(stats.checksum, &buf[..64.min(got)]);
                sys.close(c)
            })?;
            stats.ops += 1;
            stats.bytes += served as u64;
            let _ = i;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing() {
        assert_eq!(parse_request(b"GET /index.html HTTP/1.0\r\n\r\n"), Some("/index.html"));
        assert_eq!(parse_request(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"), Some("/"));
        assert_eq!(parse_request(b"POST / HTTP/1.0\r\n"), None);
        assert_eq!(parse_request(b"GET /"), None, "missing version");
        assert_eq!(parse_request(&[0xff, 0xfe]), None, "not utf-8");
    }

    #[test]
    fn header_format() {
        let h = response_header(200, 10240);
        assert!(h.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(h.contains("Content-Length: 10240"));
        assert!(h.ends_with("\r\n\r\n"));
    }

    #[test]
    fn serves_requests_natively() {
        let mut cvm = veil_services::CvmBuilder::new().frames(4096).build_native().unwrap();
        let pid = cvm.spawn();
        let mut d = crate::driver::NativeDriver { cvm: &mut cvm, pid };
        let stats = HttpWorkload::lighttpd(5).run(&mut d).unwrap();
        assert_eq!(stats.ops, 5);
        assert!(stats.bytes >= 5 * 10 * 1024, "served the body each time");
    }

    #[test]
    fn missing_file_is_404_not_error() {
        let mut cvm = veil_services::CvmBuilder::new().frames(2048).build_native().unwrap();
        let pid = cvm.spawn();
        let mut sys = cvm.sys(pid);
        let s = sys.socket().unwrap();
        sys.bind(s, 9001).unwrap();
        sys.listen(s).unwrap();
        let c = sys.socket().unwrap();
        sys.connect(c, 9001).unwrap();
        sys.send(c, b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
        let conn = sys.accept(s).unwrap();
        serve_connection(&mut sys, conn, 1000).unwrap();
        let mut buf = [0u8; 128];
        let n = sys.recv(c, &mut buf).unwrap();
        assert!(buf[..n].starts_with(b"HTTP/1.0 404"));
    }
}
