//! Workloads reproducing the paper's evaluation programs (§9, Tables 3–5).
//!
//! Every workload is written against [`veil_os::sys::Sys`] through a
//! [`driver::Driver`], so the *same* program runs:
//!
//! * natively in a baseline CVM,
//! * under Veil with no service in use (background-impact runs),
//! * shielded inside a VeilS-ENC enclave (Fig. 5),
//! * with kaudit or VeilS-LOG auditing active (Fig. 6).
//!
//! The compute kernels are real (LZ77 compression, B-tree inserts, AES/
//! SHA self-tests, HTTP parsing); per-operation `burn()` charges model
//! the instruction streams our interpreter does not execute, calibrated
//! so the native syscall/log *rates* land near the paper's reported
//! per-second figures (Fig. 5/6 captions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod driver;
pub mod http;
pub mod kvstore;
pub mod mbedtls;
pub mod memcached;
pub mod minidb;
pub mod openssl;
pub mod spec_cpu;
pub mod tenant;

use veil_os::error::Errno;

/// Result of one workload run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Application-level operations completed (requests, inserts, ...).
    pub ops: u64,
    /// Payload bytes processed.
    pub bytes: u64,
    /// A workload-specific checksum so native and shielded runs can be
    /// compared for *functional* equality, not just performance.
    pub checksum: u64,
}

/// A runnable workload.
pub trait Workload {
    /// Display name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Runs to completion under `driver`.
    ///
    /// # Errors
    ///
    /// Propagates syscall failures — a workload error fails the bench.
    fn run(&mut self, driver: &mut dyn driver::Driver) -> Result<WorkloadStats, Errno>;
}

/// Folds bytes into a checksum (FNV-1a) for functional comparisons.
pub fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = if acc == 0 { 0xcbf2_9ce4_8422_2325 } else { acc };
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic_and_sensitive() {
        assert_eq!(fnv1a(0, b"abc"), fnv1a(0, b"abc"));
        assert_ne!(fnv1a(0, b"abc"), fnv1a(0, b"abd"));
        assert_ne!(fnv1a(0, b""), 0);
    }
}
