//! Drivers: bind a workload to an execution environment.
//!
//! A workload is split into *shielded* sections (the sensitive
//! computation the paper puts in an enclave) and *untrusted* sections
//! (clients, load generators, helpers). Natively both run in the same
//! process; under VeilS-ENC the shielded sections run at `Dom_ENC`.

use veil_os::error::Errno;
use veil_os::kernel::KernelSys;
use veil_os::process::Pid;
use veil_os::sys::Sys;
use veil_sdk::runtime::park_enclave;
use veil_sdk::{EnclaveRuntime, EnclaveSys};

/// A closure over one section of workload logic.
pub type Section<'s> = &'s mut dyn FnMut(&mut dyn Sys) -> Result<(), Errno>;

/// Binds workload sections to Sys implementations.
pub trait Driver {
    /// Runs a *shielded* section (enclave-resident under VeilS-ENC).
    ///
    /// # Errors
    ///
    /// Propagates section and entry/exit failures.
    fn shielded(&mut self, f: Section<'_>) -> Result<(), Errno>;

    /// Runs an *untrusted* section (client / load generator).
    ///
    /// # Errors
    ///
    /// Propagates section failures.
    fn untrusted(&mut self, f: Section<'_>) -> Result<(), Errno>;

    /// Machine cycles so far (for rate computations).
    fn cycles(&self) -> u64;
}

/// Runs everything directly in the kernel (native CVM baseline).
pub struct NativeDriver<'a> {
    /// The baseline CVM.
    pub cvm: &'a mut veil_core::cvm::NativeCvm,
    /// Process both sections run in.
    pub pid: Pid,
}

impl Driver for NativeDriver<'_> {
    fn shielded(&mut self, f: Section<'_>) -> Result<(), Errno> {
        let mut sys = self.cvm.sys(self.pid);
        f(&mut sys)
    }

    fn untrusted(&mut self, f: Section<'_>) -> Result<(), Errno> {
        let mut sys = self.cvm.sys(self.pid);
        f(&mut sys)
    }

    fn cycles(&self) -> u64 {
        self.cvm.hv.machine.cycles().total()
    }
}

/// Runs everything at `Dom_UNT` in a Veil CVM — the "Veil, no protected
/// service in use" configuration of the §9.1 background benchmark.
pub struct VeilUnshieldedDriver<'a> {
    /// The Veil CVM.
    pub cvm: &'a mut veil_services::Cvm,
    /// Process both sections run in.
    pub pid: Pid,
}

impl Driver for VeilUnshieldedDriver<'_> {
    fn shielded(&mut self, f: Section<'_>) -> Result<(), Errno> {
        let mut sys = self.cvm.sys(self.pid);
        f(&mut sys)
    }

    fn untrusted(&mut self, f: Section<'_>) -> Result<(), Errno> {
        let mut sys = self.cvm.sys(self.pid);
        f(&mut sys)
    }

    fn cycles(&self) -> u64 {
        self.cvm.hv.machine.cycles().total()
    }
}

/// Shielded sections run inside a VeilS-ENC enclave; untrusted sections
/// run as the plain application (same process, outside the enclave).
pub struct EnclaveDriver<'a> {
    /// The Veil CVM.
    pub cvm: &'a mut veil_services::Cvm,
    /// The enclave runtime (installed by `veil_sdk::install_enclave`).
    pub rt: &'a mut EnclaveRuntime,
}

impl Driver for EnclaveDriver<'_> {
    fn shielded(&mut self, f: Section<'_>) -> Result<(), Errno> {
        let mut sys = EnclaveSys::activate(self.cvm, self.rt)?;
        f(&mut sys)
        // Stay inside: consecutive shielded sections cost no crossings.
    }

    fn untrusted(&mut self, f: Section<'_>) -> Result<(), Errno> {
        // The enclave thread is descheduled; the app runs normally.
        park_enclave(self.cvm, self.rt)?;
        let pid = self.rt.handle.pid;
        let mut sys = KernelSys {
            kernel: &mut self.cvm.kernel,
            hv: &mut self.cvm.hv,
            gate: &mut self.cvm.gate,
            vcpu: 0,
            pid,
        };
        f(&mut sys)
    }

    fn cycles(&self) -> u64 {
        self.cvm.hv.machine.cycles().total()
    }
}

/// Shielded sections run in the enclave with §10-style syscall batching:
/// fire-and-forget calls are queued and drained `batch` at a time.
pub struct BatchedEnclaveDriver<'a> {
    /// The Veil CVM.
    pub cvm: &'a mut veil_services::Cvm,
    /// The enclave runtime.
    pub rt: &'a mut EnclaveRuntime,
    /// Queue depth per exit pair.
    pub batch: usize,
}

impl Driver for BatchedEnclaveDriver<'_> {
    fn shielded(&mut self, f: Section<'_>) -> Result<(), Errno> {
        let mut inner = EnclaveSys::activate(self.cvm, self.rt)?;
        let mut sys = veil_sdk::BatchedSys::new(&mut inner, self.batch);
        let r = f(&mut sys);
        sys.finish()?;
        r
    }

    fn untrusted(&mut self, f: Section<'_>) -> Result<(), Errno> {
        park_enclave(self.cvm, self.rt)?;
        let pid = self.rt.handle.pid;
        let mut sys = KernelSys {
            kernel: &mut self.cvm.kernel,
            hv: &mut self.cvm.hv,
            gate: &mut self.cvm.gate,
            vcpu: 0,
            pid,
        };
        f(&mut sys)
    }

    fn cycles(&self) -> u64 {
        self.cvm.hv.machine.cycles().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veil_os::sys::OpenFlags;
    use veil_sdk::{install_enclave, EnclaveBinary};

    #[test]
    fn native_driver_runs_sections() {
        let mut cvm = veil_services::CvmBuilder::new().frames(2048).build_native().unwrap();
        let pid = cvm.spawn();
        let mut d = NativeDriver { cvm: &mut cvm, pid };
        let mut seen = 0u32;
        d.shielded(&mut |sys| {
            let fd = sys.open("/tmp/n", OpenFlags::rdwr_create())?;
            sys.write(fd, b"x")?;
            seen += 1;
            Ok(())
        })
        .unwrap();
        d.untrusted(&mut |sys| {
            sys.stat("/tmp/n")?;
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 2);
        assert!(d.cycles() > 0);
    }

    #[test]
    fn enclave_driver_crosses_only_for_shielded_sections() {
        let mut cvm = veil_services::CvmBuilder::new().frames(4096).vcpus(1).build().unwrap();
        let pid = cvm.spawn();
        let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("drv", 1024, 0)).unwrap();
        let mut rt = EnclaveRuntime::new(handle);
        let mut d = EnclaveDriver { cvm: &mut cvm, rt: &mut rt };
        d.shielded(&mut |sys| {
            let fd = sys.open("/tmp/e", OpenFlags::rdwr_create())?;
            sys.write(fd, b"enclave")?;
            sys.close(fd)
        })
        .unwrap();
        let crossings_after_shielded = d.rt.stats.crossings;
        d.untrusted(&mut |sys| sys.stat("/tmp/e").map(|_| ())).unwrap();
        // The untrusted section added at most the park-exit.
        assert!(d.rt.stats.crossings <= crossings_after_shielded + 1);
        assert!(d.rt.stats.syscalls >= 3);
    }
}
