//! A SQLite-like embedded database: B-tree table + write-ahead journal.
//!
//! Backs two paper workloads: the Fig. 5 SQLite case ("inserted 10k
//! random entries into a test database") and the Fig. 6 `sqlite-speedtest`
//! audit case. The B-tree is real (order-16, splits, ordered iteration);
//! every transaction journals to the WAL file and then writes the dirty
//! page, producing the paper-like 2-syscalls-per-insert pattern.

use crate::driver::Driver;
use crate::{fnv1a, Workload, WorkloadStats};
use veil_crypto::Drbg;
use veil_os::error::Errno;
use veil_os::sys::OpenFlags;

const ORDER: usize = 16;

/// An in-memory B-tree of fixed order with u64 keys and small row
/// payloads; mirrors SQLite's table tree.
#[derive(Debug, Default)]
pub struct BTree {
    root: Option<Box<Node>>,
    /// Number of keys stored.
    pub len: usize,
}

#[derive(Debug)]
struct Node {
    keys: Vec<u64>,
    rows: Vec<Vec<u8>>,
    children: Vec<Node>,
}

impl Node {
    fn leaf() -> Node {
        Node { keys: Vec::new(), rows: Vec::new(), children: Vec::new() }
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    fn full(&self) -> bool {
        self.keys.len() >= 2 * ORDER - 1
    }
}

impl BTree {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces `key`.
    pub fn insert(&mut self, key: u64, row: Vec<u8>) {
        let mut root = match self.root.take() {
            Some(r) => r,
            None => Box::new(Node::leaf()),
        };
        if root.full() {
            let mut new_root = Node::leaf();
            new_root.children.push(*root);
            Self::split_child(&mut new_root, 0);
            root = Box::new(new_root);
        }
        if Self::insert_nonfull(&mut root, key, row) {
            self.len += 1;
        }
        self.root = Some(root);
    }

    fn split_child(parent: &mut Node, idx: usize) {
        let child = &mut parent.children[idx];
        let mid = ORDER - 1;
        let up_key = child.keys[mid];
        let up_row = child.rows[mid].clone();
        let mut right = Node::leaf();
        right.keys = child.keys.split_off(mid + 1);
        right.rows = child.rows.split_off(mid + 1);
        child.keys.pop();
        child.rows.pop();
        if !child.is_leaf() {
            right.children = child.children.split_off(mid + 1);
        }
        parent.keys.insert(idx, up_key);
        parent.rows.insert(idx, up_row);
        parent.children.insert(idx + 1, right);
    }

    fn insert_nonfull(node: &mut Node, key: u64, row: Vec<u8>) -> bool {
        match node.keys.binary_search(&key) {
            Ok(i) => {
                node.rows[i] = row;
                false
            }
            Err(i) => {
                if node.is_leaf() {
                    node.keys.insert(i, key);
                    node.rows.insert(i, row);
                    true
                } else {
                    let mut i = i;
                    if node.children[i].full() {
                        Self::split_child(node, i);
                        match node.keys.binary_search(&key) {
                            Ok(j) => {
                                node.rows[j] = row;
                                return false;
                            }
                            Err(j) => i = j,
                        }
                    }
                    Self::insert_nonfull(&mut node.children[i], key, row)
                }
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        let mut node = self.root.as_deref()?;
        loop {
            match node.keys.binary_search(&key) {
                Ok(i) => return Some(&node.rows[i]),
                Err(i) => {
                    if node.is_leaf() {
                        return None;
                    }
                    node = &node.children[i];
                }
            }
        }
    }

    /// In-order visit of every (key, row).
    pub fn scan(&self, f: &mut dyn FnMut(u64, &[u8])) {
        if let Some(r) = &self.root {
            Self::scan_node(r, f);
        }
    }

    fn scan_node(node: &Node, f: &mut dyn FnMut(u64, &[u8])) {
        for i in 0..node.keys.len() {
            if !node.is_leaf() {
                Self::scan_node(&node.children[i], f);
            }
            f(node.keys[i], &node.rows[i]);
        }
        if !node.is_leaf() {
            Self::scan_node(node.children.last().expect("interior"), f);
        }
    }
}

/// Per-insert compute (B-tree bookkeeping, row encoding, SQL parse) —
/// calibrated so the shielded run lands near the paper's ~22k exits/s
/// and ~64% overhead for SQLite.
pub const INSERT_CYCLES: u64 = 40_000;

/// The Fig. 5 SQLite workload: N random inserts, journaled.
#[derive(Debug, Clone)]
pub struct SqliteWorkload {
    /// Rows to insert (paper: 10k).
    pub rows: usize,
}

impl Workload for SqliteWorkload {
    fn name(&self) -> &'static str {
        "SQLite"
    }

    fn run(&mut self, driver: &mut dyn Driver) -> Result<WorkloadStats, Errno> {
        let rows = self.rows;
        let mut stats = WorkloadStats::default();
        driver.shielded(&mut |sys| {
            let mut tree = BTree::new();
            let mut drbg = Drbg::from_seed(b"sqlite-rows");
            let wal = sys.open("/data/test.db-wal", OpenFlags::wronly_create_trunc())?;
            let db = sys.open("/data/test.db", OpenFlags::rdwr_create())?;
            for i in 0..rows {
                let key = drbg.next_u64();
                let mut row = vec![0u8; 64];
                drbg.fill(&mut row);
                sys.burn(INSERT_CYCLES);
                tree.insert(key, row.clone());
                // WAL record then page write (2 syscalls / txn).
                let mut rec = Vec::with_capacity(76);
                rec.extend_from_slice(&(i as u32).to_le_bytes());
                rec.extend_from_slice(&key.to_le_bytes());
                rec.extend_from_slice(&row);
                sys.write(wal, &rec)?;
                let page_off = (key % 1024) * 76;
                sys.pwrite(db, &rec, page_off)?;
                stats.ops += 1;
                stats.bytes += rec.len() as u64;
            }
            // Verification scan: everything inserted is findable.
            let mut found = 0u64;
            tree.scan(&mut |k, row| {
                found += 1;
                stats.checksum = fnv1a(stats.checksum ^ k, row);
            });
            assert_eq!(found as usize, tree.len);
            sys.close(wal)?;
            sys.close(db)
        })?;
        Ok(stats)
    }
}

/// The Fig. 6 `sqlite-speedtest` audit workload: heavier per-op compute
/// (mixed query types), fewer audited writes per second (~2.3k/s).
#[derive(Debug, Clone)]
pub struct SqliteSpeedtestWorkload {
    /// Operations to run.
    pub ops: usize,
}

impl Workload for SqliteSpeedtestWorkload {
    fn name(&self) -> &'static str {
        "SQLite-speedtest"
    }

    fn run(&mut self, driver: &mut dyn Driver) -> Result<WorkloadStats, Errno> {
        let ops = self.ops;
        let mut stats = WorkloadStats::default();
        driver.shielded(&mut |sys| {
            let mut tree = BTree::new();
            let mut drbg = Drbg::from_seed(b"speedtest");
            let db = sys.open("/data/speedtest.db", OpenFlags::rdwr_create())?;
            for i in 0..ops {
                // Each speedtest op = many internal queries, one write.
                for _ in 0..16 {
                    let key = drbg.next_u64() % 4096;
                    tree.insert(key, vec![(i & 0xff) as u8; 32]);
                    let _ = tree.get(drbg.next_u64() % 4096);
                }
                sys.burn(1_250_000);
                let mut page = vec![0u8; 256];
                drbg.fill(&mut page);
                sys.lseek(db, ((i as u64 % 512) * 256) as i64, veil_os::sys::Whence::Set)?;
                sys.write(db, &page)?;
                stats.ops += 1;
                stats.bytes += 256;
                stats.checksum = fnv1a(stats.checksum, &page);
            }
            sys.close(db)
        })?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use veil_os::sys::Sys;
    use veil_testkit::prop::{check, tuple2, u64s, u8s, vecs};
    use veil_testkit::prop_assert_eq;

    #[test]
    fn btree_insert_get() {
        let mut t = BTree::new();
        for i in 0..1000u64 {
            t.insert(i * 7919 % 1000, vec![i as u8]);
        }
        assert!(t.len <= 1000);
        assert_eq!(t.get(7919 % 1000).map(|r| r[0]), Some(1));
        assert_eq!(t.get(123456), None);
    }

    #[test]
    fn btree_replace_does_not_grow() {
        let mut t = BTree::new();
        t.insert(5, vec![1]);
        t.insert(5, vec![2]);
        assert_eq!(t.len, 1);
        assert_eq!(t.get(5), Some(&[2u8][..]));
    }

    #[test]
    fn btree_scan_is_ordered() {
        let mut t = BTree::new();
        let keys = [50u64, 10, 90, 30, 70, 20, 80, 40, 60, 100];
        for k in keys {
            t.insert(k, k.to_le_bytes().to_vec());
        }
        let mut seen = Vec::new();
        t.scan(&mut |k, _| seen.push(k));
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        assert_eq!(seen, sorted);
    }

    /// The B-tree agrees with a BTreeMap oracle on any insert stream.
    #[test]
    fn prop_btree_matches_oracle() {
        let entries = vecs(tuple2(u64s(0..500), u8s(0..255)), 1..400);
        check("prop_btree_matches_oracle", 64, &entries, |entries| {
            let mut tree = BTree::new();
            let mut oracle = BTreeMap::new();
            for (k, v) in &entries {
                tree.insert(*k, vec![*v]);
                oracle.insert(*k, vec![*v]);
            }
            prop_assert_eq!(tree.len, oracle.len());
            for (k, v) in &oracle {
                prop_assert_eq!(tree.get(*k), Some(v.as_slice()));
            }
            let mut scanned = Vec::new();
            tree.scan(&mut |k, row| scanned.push((k, row.to_vec())));
            let expect: Vec<(u64, Vec<u8>)> = oracle.into_iter().collect();
            prop_assert_eq!(scanned, expect);
            Ok(())
        });
    }

    #[test]
    fn sqlite_workload_runs() {
        let mut cvm = veil_services::CvmBuilder::new().frames(4096).build_native().unwrap();
        let pid = cvm.spawn();
        let mut d = crate::driver::NativeDriver { cvm: &mut cvm, pid };
        let stats = SqliteWorkload { rows: 200 }.run(&mut d).unwrap();
        assert_eq!(stats.ops, 200);
        let mut sys = cvm.sys(pid);
        assert!(sys.stat("/data/test.db-wal").unwrap().size >= 200 * 76);
    }
}
