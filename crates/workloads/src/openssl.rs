//! An OpenSSL-speed-like crypto throughput benchmark (Table 5,
//! `pts/openssl`): long hashing/encryption bursts over in-memory buffers
//! with occasional audited result writes — the *lowest* audit rate of
//! the Fig. 6 programs (~1.5k logs/s).

use crate::driver::Driver;
use crate::{fnv1a, Workload, WorkloadStats};
use veil_crypto::{Aes128, Drbg, Sha256};
use veil_os::error::Errno;
use veil_os::sys::OpenFlags;

/// Modelled cycles per hashed/encrypted byte beyond the real work the
/// host executes (vectorized rounds etc.).
pub const CRYPTO_CYCLES_PER_BYTE: u64 = 18;

/// The benchmark: `rounds` bursts of `burst_len` bytes each.
#[derive(Debug, Clone)]
pub struct OpensslWorkload {
    /// Bursts to run.
    pub rounds: usize,
    /// Bytes per burst.
    pub burst_len: usize,
}

impl Workload for OpensslWorkload {
    fn name(&self) -> &'static str {
        "OpenSSL"
    }

    fn run(&mut self, driver: &mut dyn Driver) -> Result<WorkloadStats, Errno> {
        let (rounds, burst_len) = (self.rounds, self.burst_len);
        let mut stats = WorkloadStats::default();
        driver.shielded(&mut |sys| {
            let results = sys.open("/data/openssl.csv", OpenFlags::wronly_create_trunc())?;
            let mut drbg = Drbg::from_seed(b"openssl-speed");
            let mut buf = vec![0u8; burst_len];
            for round in 0..rounds {
                drbg.fill(&mut buf);
                // SHA-256 the burst, then AES-CTR it — both real.
                let digest = Sha256::digest(&buf);
                let aes = Aes128::new(&digest[..16].try_into().expect("16"));
                aes.ctr_apply(&digest[16..28].try_into().expect("12"), 0, &mut buf);
                sys.burn(burst_len as u64 * CRYPTO_CYCLES_PER_BYTE);
                // One audited write per burst (the results row).
                let row = format!("round,{round},sha256+aes,{burst_len}\n");
                sys.write(results, row.as_bytes())?;
                stats.ops += 1;
                stats.bytes += burst_len as u64;
                stats.checksum = fnv1a(stats.checksum, &digest);
            }
            sys.close(results)
        })?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_runs_and_is_deterministic() {
        let run = || {
            let mut cvm = veil_services::CvmBuilder::new().frames(4096).build_native().unwrap();
            let pid = cvm.spawn();
            let mut d = crate::driver::NativeDriver { cvm: &mut cvm, pid };
            OpensslWorkload { rounds: 10, burst_len: 4096 }.run(&mut d).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.ops, 10);
        assert_eq!(a.bytes, 40960);
    }
}
