//! A SPEC-CPU-like compute kernel (§9.1 "background system impact").
//!
//! The paper runs SPEC CPU 2006 inside native and Veil CVMs to show <2%
//! difference under normal execution. This workload is the analogue: a
//! compute-dominated kernel (prime sieving + matrix-ish mixing over a
//! mmapped working set) with only the syscalls a real SPEC run performs
//! (input read at start, result write at end).

use crate::driver::Driver;
use crate::{fnv1a, Workload, WorkloadStats};
use veil_os::error::Errno;
use veil_os::sys::OpenFlags;

/// Compute cycles per inner iteration.
pub const ITER_CYCLES: u64 = 2_000;

/// The compute workload.
#[derive(Debug, Clone)]
pub struct SpecCpuWorkload {
    /// Outer iterations (each ~[`ITER_CYCLES`]×64 of modelled compute).
    pub iterations: usize,
}

impl Workload for SpecCpuWorkload {
    fn name(&self) -> &'static str {
        "SPEC-like compute"
    }

    fn run(&mut self, driver: &mut dyn Driver) -> Result<WorkloadStats, Errno> {
        let iterations = self.iterations;
        let mut stats = WorkloadStats::default();
        driver.shielded(&mut |sys| {
            // Working set in real (simulated) process memory.
            let ws_len = 16 * 4096;
            let ws = sys.mmap(ws_len)?;
            let mut state = [0x9e37_79b9_7f4a_7c15u64; 8];
            for i in 0..iterations {
                // A real mixing kernel (xorshift lanes + sieve step).
                for _ in 0..64 {
                    for l in 0..8 {
                        let mut x = state[l];
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        state[l] = x.wrapping_add(state[(l + 1) % 8]);
                    }
                }
                sys.burn(64 * ITER_CYCLES);
                // Touch the working set occasionally (cache behaviour).
                if i % 16 == 0 {
                    let offset = (state[0] % (ws_len as u64 - 64)) & !7;
                    sys.mem_write(ws + offset, &state[1].to_le_bytes())?;
                }
                stats.ops += 1;
            }
            stats.checksum = fnv1a(0, &state[0].to_le_bytes());
            let out = sys.open("/data/spec.out", OpenFlags::wronly_create_trunc())?;
            sys.write(out, format!("{:x}", state[0]).as_bytes())?;
            sys.close(out)?;
            sys.munmap(ws, ws_len)
        })?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_dominates_cycles() {
        let mut cvm = veil_services::CvmBuilder::new().frames(4096).build_native().unwrap();
        let pid = cvm.spawn();
        let before = cvm.hv.machine.cycles().snapshot();
        let mut d = crate::driver::NativeDriver { cvm: &mut cvm, pid };
        let stats = SpecCpuWorkload { iterations: 200 }.run(&mut d).unwrap();
        assert_eq!(stats.ops, 200);
        let delta = cvm.hv.machine.cycles().since(&before);
        let compute = delta.of(veil_snp::cost::CostCategory::Compute);
        assert!(
            compute * 10 > delta.total() * 9,
            "compute {} of {} should dominate",
            compute,
            delta.total()
        );
    }

    #[test]
    fn deterministic_checksum() {
        let run = || {
            let mut cvm = veil_services::CvmBuilder::new().frames(4096).build_native().unwrap();
            let pid = cvm.spawn();
            let mut d = crate::driver::NativeDriver { cvm: &mut cvm, pid };
            SpecCpuWorkload { iterations: 50 }.run(&mut d).unwrap().checksum
        };
        assert_eq!(run(), run());
    }
}
