//! Counters for the machine's software TLB and RMP-verdict cache.
//!
//! These are *observability-only* statistics: they are never folded into
//! [`crate::EventCounters`], never encoded into [`crate::Record`]s, and
//! never hashed into the trace digest. That separation is load-bearing —
//! the golden trace pins in `tests/protocol_trace.rs` must stay bit-stable
//! whether the caches are enabled, disabled (`VEIL_NO_TLB=1`), hot, or
//! cold. Cache activity may only ever show up here.

/// Hit/miss/flush statistics for the software TLB (translation cache) and
/// the RMP access-verdict cache.
///
/// All fields are monotonic counts since machine construction. When the
/// caches are disabled every field stays zero, which is what lets the
/// `inspect` tool zero-suppress these rows and keep non-TLB golden output
/// unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Translations served from the TLB without a page-table walk.
    pub tlb_hits: u64,
    /// Translations that required a full 4-level walk.
    pub tlb_misses: u64,
    /// TLB invalidations: precise (INVLPG-style) single-entry drops and
    /// full flushes each count once.
    pub tlb_flushes: u64,
    /// RMP permission checks served from the verdict cache.
    pub verdict_hits: u64,
    /// RMP permission checks that consulted the RMP itself.
    pub verdict_misses: u64,
    /// Verdict-cache invalidations (per-gfn drops and full flushes).
    pub verdict_flushes: u64,
}

impl CacheCounters {
    /// Whether any cache activity has been observed at all. Used for
    /// zero-suppression in the inspection tooling.
    pub fn is_zero(&self) -> bool {
        *self == CacheCounters::default()
    }

    /// TLB hit rate in `[0, 1]`, or `None` before any lookup happened.
    pub fn tlb_hit_rate(&self) -> Option<f64> {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            None
        } else {
            Some(self.tlb_hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_detection_and_hit_rate() {
        let mut c = CacheCounters::default();
        assert!(c.is_zero());
        assert_eq!(c.tlb_hit_rate(), None);
        c.tlb_hits = 3;
        c.tlb_misses = 1;
        assert!(!c.is_zero());
        assert_eq!(c.tlb_hit_rate(), Some(0.75));
    }
}
