//! The trace-invariant checker: structural well-formedness rules every
//! honest execution must satisfy, checked over a recorded stream.

use crate::event::{Event, VMPL_UNKNOWN};
use crate::tracer::Record;
use std::fmt;

/// A violated invariant, pointing at the offending record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index into the checked slice.
    pub index: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record {}: {}", self.index, self.reason)
    }
}

/// Checks every trace invariant over `records` (stream order):
///
/// 1. **Monotonicity** — sequence numbers increase by exactly 1 and cycle
///    timestamps never decrease.
/// 2. **Switch bracketing** — every `DomainSwitch` on a VCPU sits between a
///    `VmgExit` (from the `from` domain) and a `VmEnter` (into the `to`
///    domain) on that same VCPU; no switch happens outside an exit window.
/// 3. **No RMPADJUST escalation** — every recorded `RmpAdjust` was executed
///    by a strictly more privileged VMPL than its target and granted only
///    permissions the executor itself held on the page at the time.
/// 4. **PVALIDATE privilege** — only VMPL-0 ever validates pages.
///
/// Returns the first violation found.
///
/// # Errors
///
/// [`Violation`] names the offending record index and the broken rule.
pub fn check(records: &[Record]) -> Result<(), Violation> {
    let fail = |index: usize, reason: String| Err(Violation { index, reason });
    for (i, r) in records.iter().enumerate() {
        // 1. Monotonic seq/cycles.
        if i > 0 {
            let prev = &records[i - 1];
            if r.seq != prev.seq + 1 {
                return fail(i, format!("seq jumped {} -> {}", prev.seq, r.seq));
            }
            if r.cycles < prev.cycles {
                return fail(i, format!("cycles went backwards {} -> {}", prev.cycles, r.cycles));
            }
        }
        match r.event {
            // 2. Bracketing.
            Event::DomainSwitch { vcpu, from, to, .. } => {
                match nearest_marker(records, i, vcpu, Direction::Back) {
                    Some(Event::VmgExit { vmpl, .. }) => {
                        if vmpl != VMPL_UNKNOWN && vmpl != from {
                            return fail(
                                i,
                                format!("switch from VMPL-{from} but the exit left VMPL-{vmpl}"),
                            );
                        }
                    }
                    other => {
                        return fail(
                            i,
                            format!("domain switch not preceded by a VmgExit (found {other:?})"),
                        )
                    }
                }
                match nearest_marker(records, i, vcpu, Direction::Forward) {
                    Some(Event::VmEnter { vmpl, .. }) => {
                        if vmpl != to {
                            return fail(
                                i,
                                format!("switch to VMPL-{to} but the VCPU re-entered VMPL-{vmpl}"),
                            );
                        }
                    }
                    other => {
                        return fail(
                            i,
                            format!("domain switch not followed by a VmEnter (found {other:?})"),
                        )
                    }
                }
            }
            // 3. No escalation.
            Event::RmpAdjust { executing, target, gfn, perms, executing_perms } => {
                if executing >= target {
                    return fail(
                        i,
                        format!(
                            "RMPADJUST on gfn {gfn}: VMPL-{executing} does not dominate \
                             VMPL-{target}"
                        ),
                    );
                }
                if perms & !executing_perms != 0 {
                    return fail(
                        i,
                        format!(
                            "RMPADJUST escalation on gfn {gfn}: VMPL-{executing} granted bits \
                             {perms:#06b} while holding {executing_perms:#06b}"
                        ),
                    );
                }
            }
            // 4. PVALIDATE is VMPL-0-only.
            Event::Pvalidate { vmpl, gfn, .. } if vmpl != 0 => {
                return fail(i, format!("PVALIDATE of gfn {gfn} from VMPL-{vmpl}"));
            }
            _ => {}
        }
    }
    Ok(())
}

enum Direction {
    Back,
    Forward,
}

/// Nearest exit/enter/switch event on `vcpu` before or after `i`.
fn nearest_marker(records: &[Record], i: usize, vcpu: u32, dir: Direction) -> Option<Event> {
    let matches_vcpu = |e: &Event| match *e {
        Event::VmgExit { vcpu: v, .. }
        | Event::VmEnter { vcpu: v, .. }
        | Event::DomainSwitch { vcpu: v, .. } => v == vcpu,
        _ => false,
    };
    match dir {
        Direction::Back => records[..i].iter().rev().map(|r| r.event).find(|e| matches_vcpu(e)),
        Direction::Forward => records[i + 1..].iter().map(|r| r.event).find(|e| matches_vcpu(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::exit_code;

    fn rec(seq: u64, cycles: u64, event: Event) -> Record {
        Record { seq, cycles, event }
    }

    fn switch_flow() -> Vec<Record> {
        vec![
            rec(
                0,
                100,
                Event::VmgExit {
                    vcpu: 0,
                    vmpl: 3,
                    code: exit_code::DOMAIN_SWITCH,
                    user_ghcb: false,
                    automatic: false,
                },
            ),
            rec(
                1,
                7235,
                Event::DomainSwitch { vcpu: 0, from: 3, to: 0, user_ghcb: false, automatic: false },
            ),
            rec(2, 7235, Event::VmEnter { vcpu: 0, vmpl: 0 }),
        ]
    }

    #[test]
    fn well_formed_flow_passes() {
        check(&switch_flow()).unwrap();
    }

    #[test]
    fn unbracketed_switch_fails() {
        let mut flow = switch_flow();
        flow.remove(0);
        // Re-number so the monotonicity rule is not the one that trips.
        for (i, r) in flow.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        let err = check(&flow).unwrap_err();
        assert!(err.reason.contains("not preceded"), "{err}");
    }

    #[test]
    fn wrong_reentry_domain_fails() {
        let mut flow = switch_flow();
        flow[2].event = Event::VmEnter { vcpu: 0, vmpl: 2 };
        let err = check(&flow).unwrap_err();
        assert!(err.reason.contains("re-entered"), "{err}");
    }

    #[test]
    fn escalating_rmpadjust_fails() {
        let records = [rec(
            0,
            10,
            Event::RmpAdjust {
                executing: 1,
                target: 2,
                gfn: 9,
                perms: 0b0011,
                executing_perms: 0b0001,
            },
        )];
        let err = check(&records).unwrap_err();
        assert!(err.reason.contains("escalation"), "{err}");
        let ok = [rec(
            0,
            10,
            Event::RmpAdjust {
                executing: 1,
                target: 2,
                gfn: 9,
                perms: 0b0001,
                executing_perms: 0b0011,
            },
        )];
        check(&ok).unwrap();
    }

    #[test]
    fn non_dominating_rmpadjust_fails() {
        let records = [rec(
            0,
            10,
            Event::RmpAdjust { executing: 2, target: 2, gfn: 9, perms: 0, executing_perms: 0b1111 },
        )];
        assert!(check(&records).is_err());
    }

    #[test]
    fn pvalidate_from_low_vmpl_fails() {
        let records = [rec(0, 10, Event::Pvalidate { vmpl: 3, gfn: 5, validate: true })];
        assert!(check(&records).is_err());
    }

    #[test]
    fn nonmonotonic_stream_fails() {
        let mut flow = switch_flow();
        flow[2].cycles = 1;
        assert!(check(&flow).is_err());
        let mut flow = switch_flow();
        flow[1].seq = 5;
        assert!(check(&flow).is_err());
    }
}
