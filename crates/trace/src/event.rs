//! The typed event taxonomy and its canonical binary encoding.

/// `VMGEXIT` exit-code constants mirrored from the GHCB protocol
/// (`veil_snp::ghcb::GhcbExit`), plus trace-specific sentinels. Kept here as
/// plain integers so this crate stays at the bottom of the dependency graph.
pub mod exit_code {
    /// Port/MMIO-style I/O request.
    pub const IO: u64 = 0x7b;
    /// MSR access emulation.
    pub const MSR: u64 = 0x7c;
    /// Page-state change request (private <-> shared).
    pub const PAGE_STATE_CHANGE: u64 = 0x80000010;
    /// Veil domain-switch hypercall.
    pub const DOMAIN_SWITCH: u64 = 0x8000_f001;
    /// Veil VCPU-creation hypercall.
    pub const CREATE_VCPU: u64 = 0x8000_f002;
    /// Veil doorbell hypercall (batched gate-ring drain).
    pub const DOORBELL: u64 = 0x8000_f003;
    /// Batched page-state change (shared list page).
    pub const PSC_BATCH: u64 = 0x8000_f004;
    /// Guest shutdown request.
    pub const SHUTDOWN: u64 = 0x8000_f0ff;
    /// Automatic exit (hardware interrupt; SVM `VMEXIT_INTR`).
    pub const AUTOMATIC: u64 = 0x60;
    /// The exit carried no decodable request (missing/unshared/garbled GHCB).
    pub const UNKNOWN: u64 = u64::MAX;
}

/// VMPL value recorded when the executing level is not known (e.g. a
/// `VMGEXIT` from a VCPU the hypervisor has never seen).
pub const VMPL_UNKNOWN: u8 = 0xff;

/// A privileged transition observed by the simulator.
///
/// Fields are primitives (VMPLs as raw level numbers, permissions as raw
/// bits) so events can be emitted from any layer and encoded canonically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Hypervisor-side `RMPUPDATE`: a page changed assignment state.
    RmpTransition {
        /// Guest frame number.
        gfn: u64,
        /// `true` = shared -> private (assign); `false` = reclaim to shared.
        to_private: bool,
    },
    /// Guest `PVALIDATE` (successful; VMPL-0 only by architecture).
    Pvalidate {
        /// Executing VMPL (always 0 on success).
        vmpl: u8,
        /// Guest frame number.
        gfn: u64,
        /// `true` = validate, `false` = invalidate.
        validate: bool,
    },
    /// Guest `RMPADJUST`: `executing` set the permissions of (`gfn`, `target`).
    RmpAdjust {
        /// Executing VMPL.
        executing: u8,
        /// Target VMPL whose permissions changed.
        target: u8,
        /// Guest frame number.
        gfn: u64,
        /// Permission bits granted.
        perms: u8,
        /// Permission bits the executor itself held on the page at the time
        /// (lets the invariant checker prove no escalation happened).
        executing_perms: u8,
    },
    /// A VCPU exited to the hypervisor.
    VmgExit {
        /// Exiting VCPU.
        vcpu: u32,
        /// VMPL that was executing ([`VMPL_UNKNOWN`] if the hypervisor has
        /// no record of the VCPU).
        vmpl: u8,
        /// GHCB exit code (see [`exit_code`]).
        code: u64,
        /// Whether the request arrived through a user-mapped GHCB (§6.2).
        user_ghcb: bool,
        /// Whether this was an automatic exit (interrupt) rather than a
        /// guest-requested `VMGEXIT`.
        automatic: bool,
    },
    /// The hypervisor resumed a VCPU.
    VmEnter {
        /// Resumed VCPU.
        vcpu: u32,
        /// VMPL now executing.
        vmpl: u8,
    },
    /// A completed domain switch (the VCPU resumed from a different
    /// domain's VMSA).
    DomainSwitch {
        /// VCPU that transitioned.
        vcpu: u32,
        /// Domain it left.
        from: u8,
        /// Domain it entered.
        to: u8,
        /// Whether the request arrived through a user-mapped GHCB.
        user_ghcb: bool,
        /// Whether the switch was an interrupt relay rather than a
        /// guest-requested switch.
        automatic: bool,
    },
    /// A nested page fault raised by an RMP check.
    NestedPageFault {
        /// Faulting frame.
        gfn: u64,
        /// VMPL whose access faulted.
        vmpl: u8,
    },
    /// An enclave syscall left `Dom_ENC` for the untrusted kernel (§6.2).
    SyscallRedirect {
        /// VCPU carrying the enclave thread.
        vcpu: u32,
        /// Host process id backing the enclave.
        pid: u32,
        /// Syscall number (Linux numbering).
        sysno: u32,
    },
    /// An audit record was appended to the kernel's audit trail (§7).
    AuditAppend {
        /// Audited process.
        pid: u32,
        /// Audited syscall number.
        sysno: u32,
    },
    /// A secure-channel handshake step completed (§5.1).
    ChannelHandshake {
        /// 0 = attestation + DH key published; 1 = peer key installed and
        /// the session key derived.
        step: u8,
    },
    /// A kernel module was loaded or unloaded (§7 / CS1).
    ModuleLoad {
        /// Module image size in pages.
        pages: u32,
        /// Whether VeilS-KCI protected the text (vs. native load).
        protected: bool,
        /// `true` = load, `false` = unload.
        load: bool,
    },
    /// A doorbell rang: one relayed switch is about to drain a gate
    /// request ring of `depth` queued requests (batched gate path).
    Doorbell {
        /// VCPU whose ring is drained.
        vcpu: u32,
        /// Target domain of the drain switch.
        target: u8,
        /// Queued requests in the ring at ring time.
        depth: u32,
    },
    /// A load-generator request was dispatched to the CVM. Together with
    /// [`Event::ReqComplete`] this brackets one causal request window:
    /// every event between the pair belongs to the request's critical
    /// path. The request id is `(tenant, req)`; the owning shard is
    /// stream metadata (`Tracer::shard`), never part of the encoding.
    ReqDispatch {
        /// Tenant the request belongs to.
        tenant: u64,
        /// Per-tenant request sequence number.
        req: u64,
        /// Virtual arrival time of the request (open-loop load clock).
        arrival: u64,
        /// Virtual dispatch time: `max(arrival, vclock)` — the queue-wait
        /// component is `start - arrival`, accrued before the CVM sees
        /// the request.
        start: u64,
    },
    /// The request dispatched as `(tenant, req)` completed; closes the
    /// causal window opened by the matching [`Event::ReqDispatch`].
    ReqComplete {
        /// Tenant the request belongs to.
        tenant: u64,
        /// Per-tenant request sequence number.
        req: u64,
    },
    /// A fire-and-forget gate request was queued into the per-VCPU gate
    /// ring instead of switching immediately (batched gate path). Cycles
    /// elapsing while the ring is occupied are batch-stall time for the
    /// open request window, until the draining [`Event::Doorbell`].
    RingEnqueue {
        /// VCPU whose ring received the entry.
        vcpu: u32,
        /// Trusted domain the entry targets.
        target: u8,
        /// Ring occupancy after the push.
        depth: u32,
        /// Tenant of the causal request context (0 outside fleet runs).
        tenant: u64,
        /// Request sequence of the causal context (0 outside fleet runs).
        req: u64,
    },
    /// Deferred (fire-and-forget) gate requests were voided after their
    /// responses had already been given up: a refused doorbell switch, a
    /// corrupt ring slot, or a failed trusted-side dispatch.
    DeferredError {
        /// VCPU whose batch was voided.
        vcpu: u32,
        /// Requests voided by this failure.
        count: u32,
    },
}

impl Event {
    /// Canonical tag byte, the first byte of the event encoding.
    pub fn tag(&self) -> u8 {
        match self {
            Event::RmpTransition { .. } => 0,
            Event::Pvalidate { .. } => 1,
            Event::RmpAdjust { .. } => 2,
            Event::VmgExit { .. } => 3,
            Event::VmEnter { .. } => 4,
            Event::DomainSwitch { .. } => 5,
            Event::NestedPageFault { .. } => 6,
            Event::SyscallRedirect { .. } => 7,
            Event::AuditAppend { .. } => 8,
            Event::ChannelHandshake { .. } => 9,
            Event::ModuleLoad { .. } => 10,
            Event::Doorbell { .. } => 11,
            Event::ReqDispatch { .. } => 12,
            Event::ReqComplete { .. } => 13,
            Event::RingEnqueue { .. } => 14,
            Event::DeferredError { .. } => 15,
        }
    }

    /// Stable human-readable event name (table/JSON export).
    pub fn name(&self) -> &'static str {
        match self {
            Event::RmpTransition { .. } => "rmp_transition",
            Event::Pvalidate { .. } => "pvalidate",
            Event::RmpAdjust { .. } => "rmpadjust",
            Event::VmgExit { .. } => "vmgexit",
            Event::VmEnter { .. } => "vmenter",
            Event::DomainSwitch { .. } => "domain_switch",
            Event::NestedPageFault { .. } => "nested_page_fault",
            Event::SyscallRedirect { .. } => "syscall_redirect",
            Event::AuditAppend { .. } => "audit_append",
            Event::ChannelHandshake { .. } => "channel_handshake",
            Event::ModuleLoad { .. } => "module_load",
            Event::Doorbell { .. } => "doorbell",
            Event::ReqDispatch { .. } => "req_dispatch",
            Event::ReqComplete { .. } => "req_complete",
            Event::RingEnqueue { .. } => "ring_enqueue",
            Event::DeferredError { .. } => "deferred_error",
        }
    }

    /// Appends the canonical encoding (tag byte, then each field
    /// little-endian in declaration order) to `buf`. This byte layout is
    /// the contract behind [`crate::Tracer::digest`]: changing it breaks
    /// every pinned golden digest, intentionally.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(self.tag());
        match *self {
            Event::RmpTransition { gfn, to_private } => {
                buf.extend_from_slice(&gfn.to_le_bytes());
                buf.push(to_private as u8);
            }
            Event::Pvalidate { vmpl, gfn, validate } => {
                buf.push(vmpl);
                buf.extend_from_slice(&gfn.to_le_bytes());
                buf.push(validate as u8);
            }
            Event::RmpAdjust { executing, target, gfn, perms, executing_perms } => {
                buf.push(executing);
                buf.push(target);
                buf.extend_from_slice(&gfn.to_le_bytes());
                buf.push(perms);
                buf.push(executing_perms);
            }
            Event::VmgExit { vcpu, vmpl, code, user_ghcb, automatic } => {
                buf.extend_from_slice(&vcpu.to_le_bytes());
                buf.push(vmpl);
                buf.extend_from_slice(&code.to_le_bytes());
                buf.push(user_ghcb as u8);
                buf.push(automatic as u8);
            }
            Event::VmEnter { vcpu, vmpl } => {
                buf.extend_from_slice(&vcpu.to_le_bytes());
                buf.push(vmpl);
            }
            Event::DomainSwitch { vcpu, from, to, user_ghcb, automatic } => {
                buf.extend_from_slice(&vcpu.to_le_bytes());
                buf.push(from);
                buf.push(to);
                buf.push(user_ghcb as u8);
                buf.push(automatic as u8);
            }
            Event::NestedPageFault { gfn, vmpl } => {
                buf.extend_from_slice(&gfn.to_le_bytes());
                buf.push(vmpl);
            }
            Event::SyscallRedirect { vcpu, pid, sysno } => {
                buf.extend_from_slice(&vcpu.to_le_bytes());
                buf.extend_from_slice(&pid.to_le_bytes());
                buf.extend_from_slice(&sysno.to_le_bytes());
            }
            Event::AuditAppend { pid, sysno } => {
                buf.extend_from_slice(&pid.to_le_bytes());
                buf.extend_from_slice(&sysno.to_le_bytes());
            }
            Event::ChannelHandshake { step } => buf.push(step),
            Event::ModuleLoad { pages, protected, load } => {
                buf.extend_from_slice(&pages.to_le_bytes());
                buf.push(protected as u8);
                buf.push(load as u8);
            }
            Event::Doorbell { vcpu, target, depth } => {
                buf.extend_from_slice(&vcpu.to_le_bytes());
                buf.push(target);
                buf.extend_from_slice(&depth.to_le_bytes());
            }
            Event::ReqDispatch { tenant, req, arrival, start } => {
                buf.extend_from_slice(&tenant.to_le_bytes());
                buf.extend_from_slice(&req.to_le_bytes());
                buf.extend_from_slice(&arrival.to_le_bytes());
                buf.extend_from_slice(&start.to_le_bytes());
            }
            Event::ReqComplete { tenant, req } => {
                buf.extend_from_slice(&tenant.to_le_bytes());
                buf.extend_from_slice(&req.to_le_bytes());
            }
            Event::RingEnqueue { vcpu, target, depth, tenant, req } => {
                buf.extend_from_slice(&vcpu.to_le_bytes());
                buf.push(target);
                buf.extend_from_slice(&depth.to_le_bytes());
                buf.extend_from_slice(&tenant.to_le_bytes());
                buf.extend_from_slice(&req.to_le_bytes());
            }
            Event::DeferredError { vcpu, count } => {
                buf.extend_from_slice(&vcpu.to_le_bytes());
                buf.extend_from_slice(&count.to_le_bytes());
            }
        }
    }

    /// Field name/value pairs for export. Values are rendered as JSON
    /// literals (numbers and `true`/`false`), so they can be embedded in
    /// JSON unquoted or joined as `k=v` for tables.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        match *self {
            Event::RmpTransition { gfn, to_private } => {
                vec![("gfn", gfn.to_string()), ("to_private", to_private.to_string())]
            }
            Event::Pvalidate { vmpl, gfn, validate } => vec![
                ("vmpl", vmpl.to_string()),
                ("gfn", gfn.to_string()),
                ("validate", validate.to_string()),
            ],
            Event::RmpAdjust { executing, target, gfn, perms, executing_perms } => vec![
                ("executing", executing.to_string()),
                ("target", target.to_string()),
                ("gfn", gfn.to_string()),
                ("perms", perms.to_string()),
                ("executing_perms", executing_perms.to_string()),
            ],
            Event::VmgExit { vcpu, vmpl, code, user_ghcb, automatic } => vec![
                ("vcpu", vcpu.to_string()),
                ("vmpl", vmpl.to_string()),
                ("code", code.to_string()),
                ("user_ghcb", user_ghcb.to_string()),
                ("automatic", automatic.to_string()),
            ],
            Event::VmEnter { vcpu, vmpl } => {
                vec![("vcpu", vcpu.to_string()), ("vmpl", vmpl.to_string())]
            }
            Event::DomainSwitch { vcpu, from, to, user_ghcb, automatic } => vec![
                ("vcpu", vcpu.to_string()),
                ("from", from.to_string()),
                ("to", to.to_string()),
                ("user_ghcb", user_ghcb.to_string()),
                ("automatic", automatic.to_string()),
            ],
            Event::NestedPageFault { gfn, vmpl } => {
                vec![("gfn", gfn.to_string()), ("vmpl", vmpl.to_string())]
            }
            Event::SyscallRedirect { vcpu, pid, sysno } => vec![
                ("vcpu", vcpu.to_string()),
                ("pid", pid.to_string()),
                ("sysno", sysno.to_string()),
            ],
            Event::AuditAppend { pid, sysno } => {
                vec![("pid", pid.to_string()), ("sysno", sysno.to_string())]
            }
            Event::ChannelHandshake { step } => vec![("step", step.to_string())],
            Event::ModuleLoad { pages, protected, load } => vec![
                ("pages", pages.to_string()),
                ("protected", protected.to_string()),
                ("load", load.to_string()),
            ],
            Event::Doorbell { vcpu, target, depth } => vec![
                ("vcpu", vcpu.to_string()),
                ("target", target.to_string()),
                ("depth", depth.to_string()),
            ],
            Event::ReqDispatch { tenant, req, arrival, start } => vec![
                ("tenant", tenant.to_string()),
                ("req", req.to_string()),
                ("arrival", arrival.to_string()),
                ("start", start.to_string()),
            ],
            Event::ReqComplete { tenant, req } => {
                vec![("tenant", tenant.to_string()), ("req", req.to_string())]
            }
            Event::RingEnqueue { vcpu, target, depth, tenant, req } => vec![
                ("vcpu", vcpu.to_string()),
                ("target", target.to_string()),
                ("depth", depth.to_string()),
                ("tenant", tenant.to_string()),
                ("req", req.to_string()),
            ],
            Event::DeferredError { vcpu, count } => {
                vec![("vcpu", vcpu.to_string()), ("count", count.to_string())]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct_and_stable() {
        let events = [
            Event::RmpTransition { gfn: 1, to_private: true },
            Event::Pvalidate { vmpl: 0, gfn: 1, validate: true },
            Event::RmpAdjust { executing: 0, target: 3, gfn: 1, perms: 3, executing_perms: 15 },
            Event::VmgExit {
                vcpu: 0,
                vmpl: 3,
                code: exit_code::IO,
                user_ghcb: false,
                automatic: false,
            },
            Event::VmEnter { vcpu: 0, vmpl: 3 },
            Event::DomainSwitch { vcpu: 0, from: 3, to: 0, user_ghcb: false, automatic: false },
            Event::NestedPageFault { gfn: 1, vmpl: 3 },
            Event::SyscallRedirect { vcpu: 0, pid: 1, sysno: 0 },
            Event::AuditAppend { pid: 1, sysno: 2 },
            Event::ChannelHandshake { step: 0 },
            Event::ModuleLoad { pages: 4, protected: true, load: true },
            Event::Doorbell { vcpu: 0, target: 1, depth: 3 },
            Event::ReqDispatch { tenant: 1, req: 2, arrival: 10, start: 20 },
            Event::ReqComplete { tenant: 1, req: 2 },
            Event::RingEnqueue { vcpu: 0, target: 1, depth: 4, tenant: 1, req: 2 },
            Event::DeferredError { vcpu: 0, count: 3 },
        ];
        let mut tags: Vec<u8> = events.iter().map(Event::tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), events.len(), "duplicate tag byte");
        assert_eq!(tags, (0..16).collect::<Vec<u8>>(), "tags must stay dense and stable");
    }

    #[test]
    fn encoding_starts_with_tag_and_is_field_order_stable() {
        let ev = Event::DomainSwitch { vcpu: 7, from: 3, to: 0, user_ghcb: true, automatic: false };
        let mut buf = Vec::new();
        ev.encode_into(&mut buf);
        assert_eq!(buf, vec![5, 7, 0, 0, 0, 3, 0, 1, 0]);
    }

    #[test]
    fn fields_match_variant() {
        let ev = Event::Pvalidate { vmpl: 0, gfn: 42, validate: true };
        assert_eq!(ev.name(), "pvalidate");
        let fields = ev.fields();
        assert_eq!(fields[1], ("gfn", "42".to_string()));
    }
}
