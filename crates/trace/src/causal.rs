//! Causal request tracing: a pure fold that reconstructs per-request
//! critical paths from the event stream.
//!
//! The fleet load generator brackets every request between an
//! [`Event::ReqDispatch`] and an [`Event::ReqComplete`] record. Inside
//! that window, every cycle the machine spends is attributed to exactly
//! one critical-path component by partitioning the intervals between
//! consecutive records:
//!
//! * **relay** — a `VMGEXIT` is open on some VCPU (the hypervisor holds
//!   the request: relayed domain switches, doorbell drains, I/O exits);
//! * **batch-stall** — no relay is open but the gate ring holds queued
//!   deferred requests (work parked behind a future doorbell);
//! * **service** — everything else: guest-side compute, syscalls, audit
//!   bookkeeping.
//!
//! The priority order (relay over batch-stall over service) makes the
//! partition total and disjoint, so for every request
//!
//! ```text
//! batch_stall + relay + service == complete_cycles - dispatch_cycles
//! ```
//!
//! holds *exactly* — no residuals, no drift. The fourth component,
//! **queue-wait**, is virtual time accrued before dispatch
//! (`start - arrival`, carried by the dispatch event itself), so
//! end-to-end latency decomposes exactly as
//! `queue_wait + batch_stall + relay + service`.
//!
//! Like [`crate::EventCounters`], the fold is a pure function of the
//! record stream: identical streams produce identical paths, so the
//! decomposition is bit-stable across scheduler worker counts and
//! mergeable in any order ([`Attribution::merge`] is commutative).

use crate::event::Event;
use crate::tracer::Record;
use std::collections::BTreeMap;

/// One critical-path component of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// Virtual time between arrival and dispatch (queued behind earlier
    /// requests on the shard's virtual clock).
    QueueWait,
    /// Cycles parked behind an occupied gate ring, pre-doorbell.
    BatchStall,
    /// Cycles under an open `VMGEXIT` (hypervisor-relayed switches,
    /// doorbell drains, I/O exits).
    Relay,
    /// Guest-side service cycles (compute, syscalls, audit).
    Service,
}

impl Component {
    /// All components, in display/tie-break order.
    pub const ALL: [Component; 4] =
        [Component::QueueWait, Component::BatchStall, Component::Relay, Component::Service];

    /// Stable lowercase label (JSON columns, folded-stack frames).
    pub fn label(self) -> &'static str {
        match self {
            Component::QueueWait => "queue_wait",
            Component::BatchStall => "batch_stall",
            Component::Relay => "relay",
            Component::Service => "service",
        }
    }
}

/// The reconstructed critical path of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqPath {
    /// Tenant the request belongs to.
    pub tenant: u64,
    /// Per-tenant request sequence number.
    pub req: u64,
    /// Virtual arrival time.
    pub arrival: u64,
    /// Virtual dispatch time (`max(arrival, vclock)` at dispatch).
    pub start: u64,
    /// Queue-wait: `start - arrival` virtual cycles.
    pub queue_wait: u64,
    /// Batch-stall cycles inside the dispatch window.
    pub batch_stall: u64,
    /// Relay cycles inside the dispatch window.
    pub relay: u64,
    /// Service cycles inside the dispatch window.
    pub service: u64,
}

impl ReqPath {
    /// Cycles spent on the CVM: the exact dispatch→complete window.
    pub fn on_cvm_cycles(&self) -> u64 {
        self.batch_stall + self.relay + self.service
    }

    /// End-to-end latency: queue-wait plus the on-CVM window. Equals the
    /// `completion - arrival` latency the fleet histogram records.
    pub fn end_to_end(&self) -> u64 {
        self.queue_wait + self.on_cvm_cycles()
    }

    /// The cycles attributed to `component`.
    pub fn component(&self, component: Component) -> u64 {
        match component {
            Component::QueueWait => self.queue_wait,
            Component::BatchStall => self.batch_stall,
            Component::Relay => self.relay,
            Component::Service => self.service,
        }
    }

    /// The component holding the most cycles (ties break in
    /// [`Component::ALL`] order, deterministically).
    pub fn dominant(&self) -> Component {
        let mut best = Component::QueueWait;
        for c in Component::ALL {
            if self.component(c) > self.component(best) {
                best = c;
            }
        }
        best
    }
}

/// Commutative per-component cycle totals over a set of request paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Requests folded in.
    pub requests: u64,
    /// Total queue-wait cycles.
    pub queue_wait: u128,
    /// Total batch-stall cycles.
    pub batch_stall: u128,
    /// Total relay cycles.
    pub relay: u128,
    /// Total service cycles.
    pub service: u128,
}

impl Attribution {
    /// Folds one path in.
    pub fn add_path(&mut self, p: &ReqPath) {
        self.requests += 1;
        self.queue_wait += u128::from(p.queue_wait);
        self.batch_stall += u128::from(p.batch_stall);
        self.relay += u128::from(p.relay);
        self.service += u128::from(p.service);
    }

    /// Merges another attribution in (associative and commutative).
    pub fn merge(&mut self, other: &Attribution) {
        self.requests += other.requests;
        self.queue_wait += other.queue_wait;
        self.batch_stall += other.batch_stall;
        self.relay += other.relay;
        self.service += other.service;
    }

    /// The total cycles attributed to `component`.
    pub fn component(&self, component: Component) -> u128 {
        match component {
            Component::QueueWait => self.queue_wait,
            Component::BatchStall => self.batch_stall,
            Component::Relay => self.relay,
            Component::Service => self.service,
        }
    }

    /// Sum over all components (total end-to-end cycles).
    pub fn total(&self) -> u128 {
        self.queue_wait + self.batch_stall + self.relay + self.service
    }

    /// `component`'s share of the total, in [0, 1] (0 when empty).
    pub fn share(&self, component: Component) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.component(component) as f64 / total as f64
        }
    }
}

/// An open dispatch window being attributed.
#[derive(Debug, Clone, Copy)]
struct OpenReq {
    tenant: u64,
    req: u64,
    arrival: u64,
    start: u64,
    batch_stall: u64,
    relay: u64,
    service: u64,
}

/// The causal fold: feed it every record in stream order (or replay a
/// ring slice with [`CausalFold::from_records`]) and read back exact
/// per-request critical paths.
#[derive(Debug, Clone, Default)]
pub struct CausalFold {
    /// Completed request paths, in completion order.
    paths: Vec<ReqPath>,
    open: Option<OpenReq>,
    last_cycles: u64,
    /// Gate-ring occupancy after the last ring event.
    ring_depth: u32,
    /// Open `VMGEXIT` per VCPU (`true` = automatic exit). Any open
    /// non-automatic exit puts the stream in relay state.
    pending_exit: BTreeMap<u32, bool>,
    /// `ReqComplete` records with no matching open window.
    pub unmatched_completes: u64,
    /// Dispatch windows abandoned by a second dispatch or a mismatched
    /// completion (0 on every honest stream).
    pub dropped_opens: u64,
}

impl CausalFold {
    /// An empty fold.
    pub fn new() -> Self {
        CausalFold::default()
    }

    /// Replays a record slice into a fresh fold.
    pub fn from_records(records: &[Record]) -> CausalFold {
        let mut fold = CausalFold::new();
        for r in records {
            fold.observe(r);
        }
        fold
    }

    /// Folds one record in. Records must arrive in stream order (the
    /// trace invariant checker guarantees monotone cycles).
    pub fn observe(&mut self, record: &Record) {
        // Attribute the interval since the previous record under the
        // state that governed it, *before* applying this record's
        // transition.
        let delta = record.cycles.saturating_sub(self.last_cycles);
        if let Some(open) = &mut self.open {
            if self.pending_exit.values().any(|&automatic| !automatic) {
                open.relay += delta;
            } else if self.ring_depth > 0 {
                open.batch_stall += delta;
            } else {
                open.service += delta;
            }
        }
        self.last_cycles = record.cycles;

        match record.event {
            Event::VmgExit { vcpu, automatic, .. } => {
                self.pending_exit.insert(vcpu, automatic);
            }
            Event::VmEnter { vcpu, .. } => {
                self.pending_exit.remove(&vcpu);
            }
            Event::RingEnqueue { depth, .. } => self.ring_depth = depth,
            // The doorbell's drain empties the ring; the drain itself
            // runs under the doorbell's own relay bracket.
            Event::Doorbell { .. } => self.ring_depth = 0,
            // A voided batch abandons its ring entries; the gate resets
            // the ring before the next enqueue.
            Event::DeferredError { .. } => self.ring_depth = 0,
            Event::ReqDispatch { tenant, req, arrival, start } => {
                if self.open.is_some() {
                    self.dropped_opens += 1;
                }
                self.open = Some(OpenReq {
                    tenant,
                    req,
                    arrival,
                    start,
                    batch_stall: 0,
                    relay: 0,
                    service: 0,
                });
            }
            Event::ReqComplete { tenant, req } => match self.open.take() {
                Some(o) if o.tenant == tenant && o.req == req => self.paths.push(ReqPath {
                    tenant,
                    req,
                    arrival: o.arrival,
                    start: o.start,
                    queue_wait: o.start.saturating_sub(o.arrival),
                    batch_stall: o.batch_stall,
                    relay: o.relay,
                    service: o.service,
                }),
                Some(_) => {
                    self.dropped_opens += 1;
                    self.unmatched_completes += 1;
                }
                None => self.unmatched_completes += 1,
            },
            _ => {}
        }
    }

    /// Completed request paths, in completion order.
    pub fn paths(&self) -> &[ReqPath] {
        &self.paths
    }

    /// Whether a dispatch window is currently open.
    pub fn has_open_window(&self) -> bool {
        self.open.is_some()
    }

    /// Per-component totals over every completed path.
    pub fn attribution(&self) -> Attribution {
        let mut a = Attribution::default();
        for p in &self.paths {
            a.add_path(p);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::exit_code;

    fn rec(seq: u64, cycles: u64, event: Event) -> Record {
        Record { seq, cycles, event }
    }

    /// One request window: dispatch at 1000, a serial exit/enter pair
    /// (relay 7135), guest compute to 20_000, complete.
    fn simple_window() -> Vec<Record> {
        vec![
            rec(0, 1000, Event::ReqDispatch { tenant: 4, req: 7, arrival: 400, start: 900 }),
            rec(
                1,
                2000,
                Event::VmgExit {
                    vcpu: 0,
                    vmpl: 3,
                    code: exit_code::DOMAIN_SWITCH,
                    user_ghcb: false,
                    automatic: false,
                },
            ),
            rec(2, 9135, Event::VmEnter { vcpu: 0, vmpl: 0 }),
            rec(3, 20_000, Event::ReqComplete { tenant: 4, req: 7 }),
        ]
    }

    #[test]
    fn decomposition_is_exact_and_disjoint() {
        let fold = CausalFold::from_records(&simple_window());
        assert_eq!(fold.paths().len(), 1);
        let p = fold.paths()[0];
        assert_eq!(p.queue_wait, 500, "start - arrival");
        assert_eq!(p.relay, 7135, "exit→enter bracket");
        assert_eq!(p.batch_stall, 0);
        assert_eq!(p.service, 19_000 - 7135, "everything else in the window");
        assert_eq!(p.on_cvm_cycles(), 19_000, "exact window, no residual");
        assert_eq!(p.end_to_end(), 19_500);
        assert_eq!(fold.unmatched_completes, 0);
        assert_eq!(fold.dropped_opens, 0);
    }

    #[test]
    fn ring_occupancy_attributes_batch_stall_until_doorbell() {
        let fold = CausalFold::from_records(&[
            rec(0, 0, Event::ReqDispatch { tenant: 1, req: 0, arrival: 0, start: 0 }),
            // Enqueue at 100: ring becomes occupied.
            rec(1, 100, Event::RingEnqueue { vcpu: 0, target: 1, depth: 1, tenant: 1, req: 0 }),
            // 100..300 elapses with the ring occupied: batch-stall.
            rec(
                2,
                300,
                Event::VmgExit {
                    vcpu: 0,
                    vmpl: 3,
                    code: exit_code::DOORBELL,
                    user_ghcb: false,
                    automatic: false,
                },
            ),
            // Doorbell drains under the relay bracket.
            rec(3, 300, Event::Doorbell { vcpu: 0, target: 1, depth: 1 }),
            rec(4, 7435, Event::VmEnter { vcpu: 0, vmpl: 3 }),
            rec(5, 8000, Event::ReqComplete { tenant: 1, req: 0 }),
        ]);
        let p = fold.paths()[0];
        assert_eq!(p.batch_stall, 200, "ring residency before the doorbell exit");
        assert_eq!(p.relay, 7135);
        assert_eq!(p.service, 100 + 565, "pre-enqueue + post-drain");
        assert_eq!(p.on_cvm_cycles(), 8000);
    }

    #[test]
    fn ring_occupancy_persists_across_windows() {
        // Request 0 leaves an entry in the ring; request 1's whole
        // window is then batch-stall until a doorbell clears it.
        let fold = CausalFold::from_records(&[
            rec(0, 0, Event::ReqDispatch { tenant: 1, req: 0, arrival: 0, start: 0 }),
            rec(1, 10, Event::RingEnqueue { vcpu: 0, target: 1, depth: 1, tenant: 1, req: 0 }),
            rec(2, 50, Event::ReqComplete { tenant: 1, req: 0 }),
            rec(3, 60, Event::ReqDispatch { tenant: 1, req: 1, arrival: 60, start: 60 }),
            rec(4, 160, Event::ReqComplete { tenant: 1, req: 1 }),
        ]);
        assert_eq!(fold.paths()[0].batch_stall, 40);
        assert_eq!(fold.paths()[1].batch_stall, 100, "stall carried across windows");
        assert_eq!(fold.paths()[1].service, 0);
    }

    #[test]
    fn deferred_error_clears_ring_state() {
        let fold = CausalFold::from_records(&[
            rec(0, 0, Event::ReqDispatch { tenant: 2, req: 0, arrival: 0, start: 0 }),
            rec(1, 10, Event::RingEnqueue { vcpu: 0, target: 1, depth: 3, tenant: 2, req: 0 }),
            rec(2, 20, Event::DeferredError { vcpu: 0, count: 3 }),
            rec(3, 120, Event::ReqComplete { tenant: 2, req: 0 }),
        ]);
        let p = fold.paths()[0];
        assert_eq!(p.batch_stall, 10, "only the live ring interval");
        assert_eq!(p.service, 110, "post-void time is service again");
    }

    #[test]
    fn unmatched_and_mismatched_windows_are_counted_not_paths() {
        let mut fold = CausalFold::new();
        fold.observe(&rec(0, 10, Event::ReqComplete { tenant: 1, req: 1 }));
        assert_eq!(fold.unmatched_completes, 1);
        fold.observe(&rec(1, 20, Event::ReqDispatch { tenant: 1, req: 2, arrival: 0, start: 0 }));
        fold.observe(&rec(2, 30, Event::ReqComplete { tenant: 9, req: 9 }));
        assert_eq!(fold.unmatched_completes, 2);
        assert_eq!(fold.dropped_opens, 1);
        assert!(fold.paths().is_empty());
    }

    #[test]
    fn attribution_merge_is_commutative() {
        let fold = CausalFold::from_records(&simple_window());
        let a = fold.attribution();
        let mut b = Attribution::default();
        b.add_path(&ReqPath {
            tenant: 0,
            req: 0,
            arrival: 0,
            start: 10,
            queue_wait: 10,
            batch_stall: 3,
            relay: 4,
            service: 5,
        });
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.requests, 2);
        assert_eq!(ab.total(), a.total() + b.total());
    }

    #[test]
    fn dominant_component_breaks_ties_deterministically() {
        let p = ReqPath {
            tenant: 0,
            req: 0,
            arrival: 0,
            start: 0,
            queue_wait: 5,
            batch_stall: 5,
            relay: 5,
            service: 5,
        };
        assert_eq!(p.dominant(), Component::QueueWait, "ALL-order tie break");
        let p2 = ReqPath { relay: 6, ..p };
        assert_eq!(p2.dominant(), Component::Relay);
    }

    #[test]
    fn component_labels_are_stable() {
        let labels: Vec<&str> = Component::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["queue_wait", "batch_stall", "relay", "service"]);
    }
}
