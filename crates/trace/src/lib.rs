//! Deterministic structured event tracing for the Veil simulator.
//!
//! Veil's security argument (paper §3/§5, Tables 1–2) is a claim about
//! *sequences* of privileged events — `VMGEXIT`s, RMP transitions, domain
//! switches, syscall redirects — not just about end state. This crate turns
//! the deterministic simulator into a machine-checkable event log:
//!
//! * [`Event`] — the typed taxonomy of privileged transitions, carrying only
//!   primitive fields so every layer (snp, hv, core, os, sdk) can emit them
//!   without dependency cycles.
//! * [`Record`] — an event stamped with a monotonic sequence number and the
//!   virtual-cycle timestamp of `veil_snp::cost` at emission time.
//! * [`Tracer`] — a ring-buffer recorder owned by the machine. Its
//!   [`EventCounters`] fold runs *always* (so statistics like the
//!   hypervisor's `HvStats` are a pure fold over the event stream and can
//!   never drift from reality), while the ring buffer and the running
//!   SHA-256 [`Tracer::digest`] are runtime-gated and record nothing when
//!   tracing is disabled.
//! * [`CausalFold`] — the causal request-tracing fold: reconstructs exact
//!   per-request critical paths (queue-wait / batch-stall / relay /
//!   service) from `ReqDispatch`/`ReqComplete` windows in the stream.
//! * [`invariants`] — the trace-invariant checker: domain switches are
//!   bracketed by exit/enter pairs, `RMPADJUST` never escalates, sequence
//!   numbers and timestamps are monotonic.
//!
//! Everything is deterministic: the same build, configuration, and
//! `VEIL_TEST_SEED` produce bit-identical digests, which is what the
//! golden-trace regression tests pin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod causal;
mod event;
mod invariants_impl;
mod tracer;

pub use cache::CacheCounters;
pub use causal::{Attribution, CausalFold, Component, ReqPath};
pub use event::{exit_code, Event, VMPL_UNKNOWN};
pub use tracer::{EventCounters, Record, Tracer, DEFAULT_RING_CAPACITY};

/// Trace-invariant checking over recorded event streams.
pub mod invariants {
    pub use crate::invariants_impl::{check, Violation};
}

/// Renders a 32-byte digest as lowercase hex (convenience re-export used by
/// golden-trace tests and the inspection tooling).
pub fn digest_hex(digest: &[u8; 32]) -> String {
    veil_crypto::sha256::hex(digest)
}
