//! The ring-buffer recorder, its always-on counter fold, and the running
//! SHA-256 trace digest.

use crate::event::{exit_code, Event};
use std::collections::VecDeque;
use veil_crypto::sha256::Sha256;

/// Default ring capacity in records (enough for every protocol test; long
/// bench runs wrap, with [`Tracer::dropped`] counting what fell off).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// One recorded event: a monotonic sequence number, the virtual-cycle
/// timestamp at emission, and the event itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Position in the stream since tracing was (re-)enabled, starting at 0.
    pub seq: u64,
    /// `CycleAccount::total()` of the owning machine when the event fired.
    pub cycles: u64,
    /// The event.
    pub event: Event,
}

impl Record {
    /// Appends the canonical encoding (`seq` LE, `cycles` LE, then the
    /// event encoding) to `buf`. The digest is SHA-256 over the
    /// concatenation of these encodings in stream order.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.cycles.to_le_bytes());
        self.event.encode_into(buf);
    }
}

/// Pure fold over the event stream. This runs on *every* event whether or
/// not ring recording is enabled, so statistics derived from it (the
/// hypervisor's `HvStats`) are always exact and can never drift from the
/// trace — they are the same stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Guest-requested `VMGEXIT`s observed (non-automatic).
    pub vmgexits: u64,
    /// Automatic exits (interrupt injections).
    pub automatic_exits: u64,
    /// VCPU resumes.
    pub vmenters: u64,
    /// Completed domain switches.
    pub domain_switches: u64,
    /// Domain switches that crossed the enclave level (VMPL-2).
    pub enclave_crossings: u64,
    /// I/O or MSR exits serviced.
    pub io_exits: u64,
    /// Page-state changes completed through the GHCB protocol.
    pub page_state_changes: u64,
    /// Successful `PVALIDATE`s.
    pub pvalidates: u64,
    /// Successful `RMPADJUST`s.
    pub rmpadjusts: u64,
    /// RMP assignment-state transitions (assign + reclaim).
    pub rmp_transitions: u64,
    /// Nested page faults recorded.
    pub nested_page_faults: u64,
    /// Enclave syscalls redirected to the untrusted kernel.
    pub syscall_redirects: u64,
    /// Audit records appended.
    pub audit_appends: u64,
    /// Secure-channel handshake steps.
    pub handshake_steps: u64,
    /// Module loads/unloads.
    pub module_loads: u64,
    /// Doorbell rings (batched gate-ring drains).
    pub doorbells: u64,
    /// Load-generator requests dispatched (causal windows opened).
    pub req_dispatches: u64,
    /// Load-generator requests completed (causal windows closed).
    pub req_completes: u64,
    /// Fire-and-forget gate requests queued into a gate ring.
    pub ring_enqueues: u64,
    /// Deferred gate requests voided after their response was given up
    /// (sum of per-failure counts).
    pub deferred_errors: u64,
    /// Fold state: a page-state-change `VMGEXIT` is open and its RMP
    /// transition has not been observed yet.
    in_psc: bool,
    /// Fold state: a batched page-state-change `VMGEXIT` is open; every
    /// RMP transition until the next non-transition event belongs to it.
    in_psc_batch: bool,
}

impl EventCounters {
    /// Folds one event into the counters.
    pub fn observe(&mut self, event: &Event) {
        let was_psc = self.in_psc;
        let was_psc_batch = self.in_psc_batch;
        self.in_psc = false;
        if !matches!(event, Event::RmpTransition { .. }) {
            self.in_psc_batch = false;
        }
        match *event {
            Event::VmgExit { code, automatic, .. } => {
                if automatic {
                    self.automatic_exits += 1;
                } else {
                    self.vmgexits += 1;
                    if code == exit_code::IO || code == exit_code::MSR {
                        self.io_exits += 1;
                    }
                    if code == exit_code::PAGE_STATE_CHANGE {
                        self.in_psc = true;
                    }
                    if code == exit_code::PSC_BATCH {
                        self.in_psc_batch = true;
                    }
                }
            }
            Event::VmEnter { .. } => self.vmenters += 1,
            Event::DomainSwitch { from, to, .. } => {
                self.domain_switches += 1;
                if from == 2 || to == 2 {
                    self.enclave_crossings += 1;
                }
            }
            Event::RmpTransition { .. } => {
                self.rmp_transitions += 1;
                if was_psc || was_psc_batch {
                    self.page_state_changes += 1;
                }
            }
            Event::Pvalidate { .. } => self.pvalidates += 1,
            Event::RmpAdjust { .. } => self.rmpadjusts += 1,
            Event::NestedPageFault { .. } => self.nested_page_faults += 1,
            Event::SyscallRedirect { .. } => self.syscall_redirects += 1,
            Event::AuditAppend { .. } => self.audit_appends += 1,
            Event::ChannelHandshake { .. } => self.handshake_steps += 1,
            Event::ModuleLoad { .. } => self.module_loads += 1,
            Event::Doorbell { .. } => self.doorbells += 1,
            Event::ReqDispatch { .. } => self.req_dispatches += 1,
            Event::ReqComplete { .. } => self.req_completes += 1,
            Event::RingEnqueue { .. } => self.ring_enqueues += 1,
            Event::DeferredError { count, .. } => self.deferred_errors += u64::from(count),
        }
    }

    /// Replays a record slice into a fresh fold — used by the invariant
    /// suite to prove the live counters equal a fold over the recorded ring.
    pub fn from_records(records: &[Record]) -> EventCounters {
        let mut c = EventCounters::default();
        for r in records {
            c.observe(&r.event);
        }
        c
    }
}

/// Deterministic event recorder.
///
/// Two halves with different gating:
///
/// * the [`EventCounters`] fold is **always on** — it is cheap (one match,
///   a few adds) and is what keeps derived statistics exact;
/// * the ring buffer and the incremental SHA-256 digest are **runtime
///   gated** ([`Tracer::set_enabled`]) and cost nothing when disabled.
///
/// Enabling resets the stream (ring, sequence numbers, digest), so a test
/// that calls `set_enabled(true)` observes only events from that point on —
/// deterministically, even if tracing was already on (e.g. via the
/// `VEIL_TRACE` environment knob).
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    seq: u64,
    ring: VecDeque<Record>,
    dropped: u64,
    hasher: Sha256,
    counters: EventCounters,
    scratch: Vec<u8>,
    /// Which fleet shard this stream belongs to. Pure stream metadata for
    /// multi-machine exports: it never enters the record encoding or the
    /// digest, so single-machine goldens are unaffected by sharding.
    shard: u32,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A disabled tracer with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A disabled tracer holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            enabled: false,
            capacity: capacity.max(1),
            seq: 0,
            ring: VecDeque::new(),
            dropped: 0,
            hasher: Sha256::new(),
            counters: EventCounters::default(),
            scratch: Vec::with_capacity(64),
            shard: 0,
        }
    }

    /// The shard this stream is labelled with (0 outside fleet runs).
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Labels the stream with a fleet shard id. Metadata only: the digest
    /// and record encoding are unchanged, so two shards fed identical
    /// events still produce identical digests.
    pub fn set_shard(&mut self, shard: u32) {
        self.shard = shard;
    }

    /// Whether ring recording is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables ring recording. Enabling **resets** the stream
    /// (ring, sequence counter, digest); disabling stops recording but
    /// keeps the buffer for inspection. The counter fold is unaffected.
    pub fn set_enabled(&mut self, enabled: bool) {
        if enabled {
            self.ring.clear();
            self.seq = 0;
            self.dropped = 0;
            self.hasher = Sha256::new();
        }
        self.enabled = enabled;
    }

    /// Clears the recorded stream (ring, sequence counter, digest) without
    /// changing the enabled flag or the counters.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.seq = 0;
        self.dropped = 0;
        self.hasher = Sha256::new();
    }

    /// Records one event at virtual-cycle time `cycles`.
    pub fn record(&mut self, cycles: u64, event: Event) {
        self.counters.observe(&event);
        if !self.enabled {
            return;
        }
        let record = Record { seq: self.seq, cycles, event };
        self.seq += 1;
        self.scratch.clear();
        record.encode_into(&mut self.scratch);
        self.hasher.update(&self.scratch);
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(record);
    }

    /// The always-on counter fold.
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    /// Number of records currently in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records that fell off the front of the ring (the digest still covers
    /// them — it is a running hash over the full stream since enable).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the ring in stream order.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.ring.iter()
    }

    /// Iterates the ring records with `seq >= from`, in stream order.
    /// Incremental consumers (the causal fold) call this between
    /// batches of work so the ring never has to hold the whole run —
    /// only the records emitted since the last visit.
    pub fn records_since(&self, from: u64) -> impl Iterator<Item = &Record> {
        let front = self.ring.front().map_or(self.seq, |r| r.seq);
        self.ring.iter().skip(from.saturating_sub(front) as usize)
    }

    /// Sequence number the next recorded event will get (equivalently,
    /// the number of events recorded since tracing was enabled).
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Copies the ring into a `Vec` (stream order) for checking/export.
    pub fn snapshot(&self) -> Vec<Record> {
        self.ring.iter().copied().collect()
    }

    /// SHA-256 over the canonical encoding of every record since tracing
    /// was enabled. Bit-stable for identical runs; `[0; 32]`-distinct from
    /// the empty stream only once something was recorded.
    pub fn digest(&self) -> [u8; 32] {
        self.hasher.clone().finalize()
    }

    /// [`Tracer::digest`] as lowercase hex, the form golden tests pin.
    pub fn digest_hex(&self) -> String {
        veil_crypto::sha256::hex(&self.digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> Event {
        Event::VmEnter { vcpu: i as u32, vmpl: 3 }
    }

    #[test]
    fn disabled_records_nothing_but_counts() {
        let mut t = Tracer::new();
        t.record(10, sample(0));
        assert!(t.is_empty());
        assert_eq!(t.counters().vmenters, 1);
        assert_eq!(t.digest(), Sha256::digest(b""), "no stream -> empty-input digest");
    }

    #[test]
    fn digest_matches_one_shot_encoding() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        t.record(5, sample(0));
        t.record(9, Event::ChannelHandshake { step: 1 });
        let mut bytes = Vec::new();
        for r in t.records() {
            r.encode_into(&mut bytes);
        }
        assert_eq!(t.digest(), Sha256::digest(&bytes));
        assert_eq!(t.digest_hex(), veil_crypto::sha256::hex(&t.digest()));
    }

    #[test]
    fn enable_resets_stream() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        t.record(5, sample(0));
        let first = t.digest();
        t.set_enabled(true);
        assert!(t.is_empty());
        assert_ne!(t.digest(), first);
        t.record(5, sample(0));
        assert_eq!(t.digest(), first, "same stream after reset -> same digest");
    }

    #[test]
    fn ring_wraps_and_counts_drops_but_digest_covers_all() {
        let mut t = Tracer::with_capacity(2);
        t.set_enabled(true);
        for i in 0..5 {
            t.record(i, sample(i));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.records().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4]);
        // Digest covers the whole stream, not just the surviving window.
        let mut full = Tracer::with_capacity(16);
        full.set_enabled(true);
        for i in 0..5 {
            full.record(i, sample(i));
        }
        assert_eq!(t.digest(), full.digest());
    }

    #[test]
    fn psc_fold_counts_only_bracketed_transitions() {
        let mut c = EventCounters::default();
        // Direct assign (boot style): no PSC.
        c.observe(&Event::RmpTransition { gfn: 1, to_private: true });
        // PSC exit followed by its transition: counted.
        c.observe(&Event::VmgExit {
            vcpu: 0,
            vmpl: 0,
            code: exit_code::PAGE_STATE_CHANGE,
            user_ghcb: false,
            automatic: false,
        });
        c.observe(&Event::RmpTransition { gfn: 2, to_private: true });
        c.observe(&Event::VmEnter { vcpu: 0, vmpl: 0 });
        // Failed PSC (no transition before re-entry): not counted.
        c.observe(&Event::VmgExit {
            vcpu: 0,
            vmpl: 0,
            code: exit_code::PAGE_STATE_CHANGE,
            user_ghcb: false,
            automatic: false,
        });
        c.observe(&Event::VmEnter { vcpu: 0, vmpl: 0 });
        assert_eq!(c.page_state_changes, 1);
        assert_eq!(c.rmp_transitions, 2);
        assert_eq!(c.vmgexits, 2);
    }

    #[test]
    fn psc_batch_fold_counts_every_bracketed_transition() {
        let mut c = EventCounters::default();
        c.observe(&Event::VmgExit {
            vcpu: 0,
            vmpl: 3,
            code: exit_code::PSC_BATCH,
            user_ghcb: false,
            automatic: false,
        });
        for gfn in 0..3 {
            c.observe(&Event::RmpTransition { gfn, to_private: true });
        }
        c.observe(&Event::VmEnter { vcpu: 0, vmpl: 3 });
        // A later direct assign is outside the bracket.
        c.observe(&Event::RmpTransition { gfn: 9, to_private: true });
        assert_eq!(c.page_state_changes, 3, "one per batched entry");
        assert_eq!(c.rmp_transitions, 4);
        assert_eq!(c.vmgexits, 1);
    }

    #[test]
    fn doorbell_fold_counts() {
        let mut c = EventCounters::default();
        c.observe(&Event::Doorbell { vcpu: 0, target: 1, depth: 5 });
        c.observe(&Event::Doorbell { vcpu: 0, target: 1, depth: 2 });
        assert_eq!(c.doorbells, 2);
    }
}
