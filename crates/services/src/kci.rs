//! VeilS-KCI: kernel code integrity (§6.1).
//!
//! Two mechanisms:
//!
//! 1. **Kernel memory W⊕X** — at boot, every kernel text page loses write
//!    permission and every kernel data page loses supervisor-execute
//!    permission *in the RMP*, so even a kernel tricked into clearing its
//!    own NX bits cannot execute injected code (the page-table attack of
//!    §8.3 bounces off the VMPL layer).
//! 2. **TOCTOU-safe module loading** — the service copies the staged
//!    image out of untrusted memory *first*, then verifies the vendor
//!    signature, relocates against the protected symbol table, installs
//!    the text, and write-protects it with `RMPADJUST`.

use std::collections::BTreeMap;
use veil_core::monitor::Monitor;
use veil_core::service::KernelHandoff;
use veil_hv::Hypervisor;
use veil_os::error::OsError;
use veil_os::module::ModuleImage;
use veil_snp::cost::CostCategory;
use veil_snp::mem::{gpa_of, PAGE_SIZE};
use veil_snp::perms::{Vmpl, VmplPerms};

/// VeilS-KCI state.
#[derive(Debug, Default)]
pub struct VeilSKci {
    vendor_key: [u8; 32],
    /// The protected symbol table used for relocation (§6.1: "relocating
    /// symbols using a protected symbol table").
    symbols: BTreeMap<String, u64>,
    /// Modules currently installed, keyed by first text frame.
    installed: BTreeMap<u64, Vec<u64>>,
    /// Statistics for CS1.
    pub loads: u64,
    /// See [`VeilSKci::loads`].
    pub unloads: u64,
    /// Signature rejections (attack attempts).
    pub rejected: u64,
}

impl VeilSKci {
    /// Boot-time W⊕X pass over kernel memory.
    ///
    /// # Errors
    ///
    /// RMP failures abort boot.
    pub fn on_boot(
        &mut self,
        _monitor: &mut Monitor,
        hv: &mut Hypervisor,
        handoff: &KernelHandoff,
    ) -> Result<(), OsError> {
        self.vendor_key = handoff.vendor_key;
        // The same exported symbols the kernel publishes; kept privately
        // so a compromised kernel cannot redirect relocations.
        for (i, sym) in
            ["printk", "kmalloc", "kfree", "register_chrdev", "audit_log_end"].iter().enumerate()
        {
            self.symbols.insert((*sym).to_string(), 0xffff_8000_0000 + (i as u64) * 0x40);
        }
        // Text: read + supervisor-execute, no write.
        for gfn in &handoff.kernel_text_gfns {
            hv.machine.rmpadjust(Vmpl::Vmpl0, *gfn, Vmpl::Vmpl3, VmplPerms::rx_super())?;
        }
        // Data: read/write/user-exec, no supervisor-exec.
        for gfn in &handoff.kernel_data_gfns {
            hv.machine.rmpadjust(
                Vmpl::Vmpl0,
                *gfn,
                Vmpl::Vmpl3,
                VmplPerms::rw().union(VmplPerms::USER_EXEC),
            )?;
        }
        Ok(())
    }

    /// Verifies and installs a staged module (the `load_module` hook).
    ///
    /// # Errors
    ///
    /// * bad signature / malformed image → [`OsError::MonitorRefused`]
    ///   (and counted in [`VeilSKci::rejected`]);
    /// * unknown relocation symbols → refused;
    /// * RMP errors propagate.
    pub fn module_load(
        &mut self,
        monitor: &mut Monitor,
        hv: &mut Hypervisor,
        staging_gfns: &[u64],
        image_len: usize,
        dest_gfns: &[u64],
    ) -> Result<(), OsError> {
        if image_len > staging_gfns.len() * PAGE_SIZE {
            return Err(OsError::MonitorRefused("image length exceeds staging".into()));
        }
        // 1. Copy out of untrusted memory before any checks (TOCTOU).
        let mut bytes = vec![0u8; image_len];
        for (i, gfn) in staging_gfns.iter().enumerate() {
            let off = i * PAGE_SIZE;
            if off >= image_len {
                break;
            }
            let take = (image_len - off).min(PAGE_SIZE);
            hv.machine.read_into(Vmpl::Vmpl1, gpa_of(*gfn), &mut bytes[off..off + take])?;
        }
        let copy_cost = hv.machine.cost().copy(image_len);
        hv.machine.charge(CostCategory::Other, copy_cost);

        // 2. Parse + verify on the private copy.
        let sha_cost = hv.machine.cost().sha256(image_len);
        hv.machine.charge(CostCategory::Other, sha_cost);
        let image = ModuleImage::deserialize(&bytes).map_err(|e| {
            self.rejected += 1;
            OsError::MonitorRefused(format!("module parse failed: {e}"))
        })?;
        if !image.verify(&self.vendor_key) {
            self.rejected += 1;
            return Err(OsError::MonitorRefused(format!(
                "module '{}' signature rejected",
                image.name
            )));
        }
        if image.text.len().div_ceil(PAGE_SIZE).max(1) > dest_gfns.len() {
            return Err(OsError::MonitorRefused("destination too small".into()));
        }

        // 3. Relocate against the *protected* symbol table.
        let mut text = image.text.clone();
        let symbols = &self.symbols;
        ModuleImage::relocate(&mut text, &image.relocs, &|s| symbols.get(s).copied())
            .map_err(|e| OsError::MonitorRefused(format!("relocation failed: {e}")))?;

        // 4. Install into kernel memory and write-protect each page.
        for (i, chunk) in text.chunks(PAGE_SIZE).enumerate() {
            hv.machine.write(Vmpl::Vmpl1, gpa_of(dest_gfns[i]), chunk)?;
        }
        let install_cost = hv.machine.cost().copy(text.len());
        hv.machine.charge(CostCategory::Other, install_cost);
        for gfn in dest_gfns {
            hv.machine.rmpadjust(Vmpl::Vmpl0, *gfn, Vmpl::Vmpl3, VmplPerms::rx_super())?;
        }
        let _ = monitor;
        self.installed.insert(dest_gfns[0], dest_gfns.to_vec());
        self.loads += 1;
        Ok(())
    }

    /// Lifts module-text protection so the kernel can reuse the frames
    /// (the `free_module` hook).
    ///
    /// # Errors
    ///
    /// Refuses frame lists that do not correspond to an installed module
    /// (the kernel cannot use unload to strip W⊕X from arbitrary pages).
    pub fn module_unload(
        &mut self,
        _monitor: &mut Monitor,
        hv: &mut Hypervisor,
        text_gfns: &[u64],
    ) -> Result<(), OsError> {
        let key = *text_gfns
            .first()
            .ok_or_else(|| OsError::MonitorRefused("empty unload request".into()))?;
        match self.installed.get(&key) {
            Some(known) if known == text_gfns => {}
            _ => {
                return Err(OsError::MonitorRefused(
                    "unload request does not match an installed module".into(),
                ))
            }
        }
        for gfn in text_gfns {
            // Scrub module text before the kernel reuses the page, then
            // restore the data-page policy (rw, no supervisor exec).
            hv.machine.write(Vmpl::Vmpl1, gpa_of(*gfn), &[0u8; PAGE_SIZE])?;
            hv.machine.rmpadjust(
                Vmpl::Vmpl0,
                *gfn,
                Vmpl::Vmpl3,
                VmplPerms::rw().union(VmplPerms::USER_EXEC),
            )?;
        }
        self.installed.remove(&key);
        self.unloads += 1;
        Ok(())
    }

    /// Number of currently installed KCI-protected modules.
    pub fn installed_count(&self) -> usize {
        self.installed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CvmBuilder;
    use veil_core::cvm::VENDOR_KEY;
    use veil_os::module::ModuleImage;

    fn cvm() -> crate::Cvm {
        CvmBuilder::new().frames(2048).build().unwrap()
    }

    #[test]
    fn boot_wx_blocks_text_writes_and_data_exec() {
        let cvm = cvm();
        let text = cvm.gate.monitor.layout.kernel_text.start;
        let data = cvm.gate.monitor.layout.kernel_data.start;
        let rmp = cvm.hv.machine.rmp();
        let text_perms = rmp.entry(text).unwrap().perms(Vmpl::Vmpl3);
        assert!(!text_perms.contains(VmplPerms::WRITE));
        assert!(text_perms.contains(VmplPerms::SUPER_EXEC));
        let data_perms = rmp.entry(data).unwrap().perms(Vmpl::Vmpl3);
        assert!(data_perms.contains(VmplPerms::WRITE));
        assert!(!data_perms.contains(VmplPerms::SUPER_EXEC));
    }

    #[test]
    fn tampered_module_rejected_and_counted() {
        let mut cvm = cvm();
        let mut image = ModuleImage::build_signed("rootkit", 4096, &VENDOR_KEY);
        image.text[7] ^= 0x41;
        let (kernel, mut ctx) = cvm.kctx();
        assert!(kernel.load_module(&mut ctx, &image).is_err());
        assert_eq!(cvm.gate.services.kci.rejected, 1);
        assert_eq!(cvm.gate.services.kci.loads, 0);
    }

    #[test]
    fn unload_restores_writability_and_scrubs() {
        let mut cvm = cvm();
        let image = ModuleImage::build_signed("driver", 4096, &VENDOR_KEY);
        {
            let (kernel, mut ctx) = cvm.kctx();
            kernel.load_module(&mut ctx, &image).unwrap();
        }
        let gfns = cvm.kernel.modules["driver"].text_gfns.clone();
        let gpa = gpa_of(gfns[0]);
        assert!(cvm.hv.machine.write(Vmpl::Vmpl3, gpa, b"nope").is_err());
        {
            let (kernel, mut ctx) = cvm.kctx();
            kernel.unload_module(&mut ctx, "driver").unwrap();
        }
        assert!(cvm.hv.machine.write(Vmpl::Vmpl3, gpa, b"mine again").is_ok());
        assert_eq!(cvm.gate.services.kci.installed_count(), 0);
    }

    #[test]
    fn unload_of_arbitrary_frames_refused() {
        let mut cvm = cvm();
        // The OS tries to strip W^X from a page KCI never protected.
        let victim = cvm.gate.monitor.layout.kernel_pool.start + 5;
        let req = veil_os::monitor::MonRequest::KciModuleUnload { text_gfns: vec![victim] };
        let (_, ctx) = cvm.kctx();
        let err = ctx.gate.request(ctx.hv, 0, req);
        assert!(err.is_err());
    }

    #[test]
    fn module_load_cost_matches_cs1_scale() {
        // Paper CS1: ~55k extra cycles for a 24 KiB (6-page) module,
        // measured as KCI load minus native load.
        let image = ModuleImage::build_signed("cs1_module", 6 * PAGE_SIZE - 512, &VENDOR_KEY);
        let measure = |kci: bool| {
            let mut cvm = CvmBuilder::new().frames(2048).kci(kci).build().unwrap();
            let snap = cvm.hv.machine.cycles().snapshot();
            let (kernel, mut ctx) = cvm.kctx();
            kernel.load_module(&mut ctx, &image).unwrap();
            cvm.hv.machine.cycles().since(&snap).total()
        };
        let native = measure(false);
        let kci = measure(true);
        let extra = kci - native;
        assert!(
            (35_000..90_000).contains(&extra),
            "KCI extra {extra} outside CS1 ballpark (native {native}, kci {kci})"
        );
        // And it is a small fraction of the full load, as CS1 reports
        // (+5.7%): the module-prep cost dominates.
        assert!(extra * 5 < native, "extra {extra} should be <20% of {native}");
    }
}
