//! `veilstat`: the metrics snapshot as a protected service.
//!
//! The framework observes itself through its own §4 service-call path:
//! the untrusted kernel sends `MonRequest::StatSnapshot` through the
//! IDCB and domain-switch protocol, and the `Dom_SER` side answers with the
//! deterministic JSON snapshot of the machine's metrics registry and span
//! profiler (`veil_metrics::export::json_snapshot`). Beyond being useful
//! (the OS can export CVM-internal latency distributions without any new
//! trusted interface), every query exercises the full gate protocol
//! end-to-end.

use veil_hv::Hypervisor;
use veil_snp::metrics::export;

/// The veilstat service state.
#[derive(Debug, Default)]
pub struct VeilStat {
    queries: u64,
}

impl VeilStat {
    /// A fresh service.
    pub fn new() -> Self {
        VeilStat::default()
    }

    /// Renders the current metrics snapshot as JSON bytes. Runs on the
    /// trusted side after the gate's switch, so the snapshot reflects
    /// every event up to (and including) the query's own request path.
    pub fn snapshot(&mut self, hv: &Hypervisor) -> Vec<u8> {
        self.queries += 1;
        export::json_snapshot(hv.machine.metrics(), hv.machine.spans()).into_bytes()
    }

    /// Snapshot queries served since boot.
    pub fn query_count(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veil_snp::machine::{Machine, MachineConfig};

    #[test]
    fn snapshot_is_json_and_counts_queries() {
        let machine = Machine::new(MachineConfig { frames: 64, ..MachineConfig::default() });
        let hv = Hypervisor::new(machine);
        let mut stat = VeilStat::new();
        let bytes = stat.snapshot(&hv);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"histograms\""));
        stat.snapshot(&hv);
        assert_eq!(stat.query_count(), 2);
    }
}
