//! Veil's three protected services (§6) and the standard CVM assembly.
//!
//! * [`kci`] — **VeilS-KCI**: kernel code integrity. W⊕X over kernel
//!   memory enforced with VMPL permissions, plus TOCTOU-safe signed
//!   module verification and installation (§6.1).
//! * [`enc`] — **VeilS-ENC**: shielded program execution. SGX-style
//!   in-process enclaves at `Dom_ENC` with protected page tables,
//!   measurement, sealed demand paging, and user-mapped GHCB entry/exit
//!   (§6.2).
//! * [`log`] — **VeilS-LOG**: tamper-proof system audit logs in reserved
//!   append-only `Dom_SER` storage with execute-ahead relay (§6.3).
//! * [`attest`] — **VeilS-ATT**: VCEK-chain attestation reports served
//!   over the gate path (DESIGN.md §15).
//!
//! [`VeilServices`] bundles all three behind
//! [`veil_core::service::ServiceDispatch`]; [`CvmBuilder`] builds the
//! standard Veil CVM carrying the bundle.
//!
//! # Example
//!
//! ```
//! use veil_services::CvmBuilder;
//!
//! let mut cvm = CvmBuilder::new().frames(2048).build().expect("boot");
//! // Kernel text is now W⊕X-protected by VeilS-KCI:
//! let text = cvm.gate.monitor.layout.kernel_text.start;
//! let gpa = text * 4096;
//! assert!(cvm.hv.machine.write(veil_snp::perms::Vmpl::Vmpl3, gpa, b"inject").is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod enc;
pub mod kci;
pub mod log;
pub mod stat;

use veil_core::cvm::GenericCvm;
use veil_core::monitor::Monitor;
use veil_core::service::{KernelHandoff, ServiceDispatch};
use veil_hv::Hypervisor;
use veil_os::error::OsError;
use veil_os::monitor::{MonRequest, MonResponse};

pub use attest::VeilAttest;
pub use enc::{Enclave, EnclaveMeasurement, VeilSEnc};
pub use kci::VeilSKci;
pub use log::VeilSLog;
pub use stat::VeilStat;

/// The standard protected-service bundle (KCI + ENC + LOG + STAT).
#[derive(Debug, Default)]
pub struct VeilServices {
    /// Kernel code integrity.
    pub kci: VeilSKci,
    /// Shielded execution.
    pub enc: VeilSEnc,
    /// Audit-log protection.
    pub log: VeilSLog,
    /// Metrics snapshots over the protected channel.
    pub stat: VeilStat,
    /// Chain attestation reports over the protected channel.
    pub attest: VeilAttest,
}

impl VeilServices {
    /// A fresh bundle.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ServiceDispatch for VeilServices {
    fn on_boot(
        &mut self,
        monitor: &mut Monitor,
        hv: &mut Hypervisor,
        handoff: &KernelHandoff,
    ) -> Result<(), OsError> {
        self.kci.on_boot(monitor, hv, handoff)?;
        self.log.on_boot(monitor)?;
        Ok(())
    }

    fn dispatch(
        &mut self,
        monitor: &mut Monitor,
        hv: &mut Hypervisor,
        vcpu: u32,
        req: &MonRequest,
    ) -> Result<MonResponse, OsError> {
        match req {
            MonRequest::KciModuleLoad { staging_gfns, image_len, dest_gfns } => {
                self.kci.module_load(monitor, hv, staging_gfns, *image_len, dest_gfns)?;
                Ok(MonResponse::Ok)
            }
            MonRequest::KciModuleUnload { text_gfns } => {
                self.kci.module_unload(monitor, hv, text_gfns)?;
                Ok(MonResponse::Ok)
            }
            MonRequest::LogAppend { record } => {
                self.log.append(hv, record)?;
                Ok(MonResponse::Ok)
            }
            MonRequest::EncFinalize { pid, cr3_gfn, base_vaddr, len, ghcb_gfn } => {
                let id = self.enc.finalize(
                    monitor,
                    hv,
                    vcpu,
                    *pid,
                    *cr3_gfn,
                    *base_vaddr,
                    *len,
                    *ghcb_gfn,
                )?;
                Ok(MonResponse::Value(id))
            }
            MonRequest::EncPageOut { enclave_id, vaddr } => {
                self.enc.page_out(monitor, hv, *enclave_id, *vaddr)?;
                Ok(MonResponse::Ok)
            }
            MonRequest::EncPageIn { enclave_id, vaddr, staging_gfn, dest_gfn } => {
                self.enc.page_in(monitor, hv, *enclave_id, *vaddr, *staging_gfn, *dest_gfn)?;
                Ok(MonResponse::Ok)
            }
            MonRequest::EncMapSync { enclave_id, base_vaddr, pages, map } => {
                self.enc.map_sync(monitor, hv, *enclave_id, *base_vaddr, *pages, *map)?;
                Ok(MonResponse::Ok)
            }
            MonRequest::EncPermSync { enclave_id, vaddr, pte_flags } => {
                self.enc.perm_sync(hv, *enclave_id, *vaddr, *pte_flags)?;
                Ok(MonResponse::Ok)
            }
            MonRequest::EncAddThread { enclave_id, vcpu, ghcb_gfn } => {
                let vmsa = self.enc.add_thread(monitor, hv, *enclave_id, *vcpu, *ghcb_gfn)?;
                Ok(MonResponse::Value(vmsa))
            }
            MonRequest::EncDestroy { enclave_id } => {
                self.enc.destroy(monitor, hv, *enclave_id)?;
                Ok(MonResponse::Ok)
            }
            MonRequest::StatSnapshot => Ok(MonResponse::Bytes(self.stat.snapshot(hv))),
            MonRequest::AttestReport { nonce, report_data } => {
                Ok(MonResponse::Bytes(self.attest.report(hv, *nonce, *report_data)?))
            }
            MonRequest::Pvalidate { .. }
            | MonRequest::PvalidateBatch { .. }
            | MonRequest::CreateVcpu { .. } => Err(OsError::MonitorRefused(
                "architectural delegation terminates in VeilMon".into(),
            )),
        }
    }
}

/// The standard Veil CVM: monitor + all three services + kernel.
pub type Cvm = GenericCvm<VeilServices>;

// The concrete shard payload the fleet scheduler hands to worker threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Cvm>();
};

/// Builder producing the standard [`Cvm`].
#[derive(Debug, Clone, Default)]
pub struct CvmBuilder {
    inner: veil_core::cvm::CvmBuilder,
}

impl CvmBuilder {
    /// Defaults match [`veil_core::cvm::CvmBuilder`].
    pub fn new() -> Self {
        CvmBuilder { inner: veil_core::cvm::CvmBuilder::new() }
    }

    /// Guest memory in frames.
    pub fn frames(mut self, frames: u64) -> Self {
        self.inner = self.inner.frames(frames);
        self
    }

    /// VCPU count.
    pub fn vcpus(mut self, vcpus: u32) -> Self {
        self.inner = self.inner.vcpus(vcpus);
        self
    }

    /// VeilS-LOG storage size in frames.
    pub fn log_frames(mut self, frames: u64) -> Self {
        self.inner = self.inner.log_frames(frames);
        self
    }

    /// Toggle VeilS-KCI routing of module loads.
    pub fn kci(mut self, enabled: bool) -> Self {
        self.inner = self.inner.kci(enabled);
        self
    }

    /// Toggle deterministic event tracing (see
    /// [`veil_core::cvm::CvmBuilder::trace`]).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.inner = self.inner.trace(enabled);
        self
    }

    /// Toggle metrics collection (see
    /// [`veil_core::cvm::CvmBuilder::metrics`]).
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.inner = self.inner.metrics(enabled);
        self
    }

    /// Toggle the batched gate path (see
    /// [`veil_core::cvm::CvmBuilder::batch`]).
    pub fn batch(mut self, enabled: bool) -> Self {
        self.inner = self.inner.batch(enabled);
        self
    }

    /// Toggle the VMPL-0 firmware measurement stage (see
    /// [`veil_core::cvm::CvmBuilder::attest`]).
    pub fn attest(mut self, enforced: bool) -> Self {
        self.inner = self.inner.attest(enforced);
        self
    }

    /// Pin the launch measurement the firmware stage must observe (see
    /// [`veil_core::cvm::CvmBuilder::expected_measurement`]).
    pub fn expected_measurement(mut self, digest: [u8; 32]) -> Self {
        self.inner = self.inner.expected_measurement(digest);
        self
    }

    /// Test/adversary hook: flip one staged boot-image byte (see
    /// [`veil_core::cvm::CvmBuilder::tamper_boot_image`]).
    pub fn tamper_boot_image(mut self, page: usize, offset: usize) -> Self {
        self.inner = self.inner.tamper_boot_image(page, offset);
        self
    }

    /// Label the CVM's machine with a fleet shard id (see
    /// [`veil_core::cvm::CvmBuilder::shard`]).
    pub fn shard(mut self, shard: u32) -> Self {
        self.inner = self.inner.shard(shard);
        self
    }

    /// Builds the CVM.
    ///
    /// # Errors
    ///
    /// See [`veil_core::cvm::CvmBuilder::build_with`].
    pub fn build(self) -> Result<Cvm, OsError> {
        self.inner.build_with(VeilServices::new())
    }

    /// Builds the native baseline with identical geometry.
    ///
    /// # Errors
    ///
    /// See [`veil_core::cvm::CvmBuilder::build_native`].
    pub fn build_native(self) -> Result<veil_core::cvm::NativeCvm, OsError> {
        self.inner.build_native()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veil_core::cvm::VENDOR_KEY;
    use veil_os::audit::AuditMode;
    use veil_os::module::ModuleImage;
    use veil_os::sys::{OpenFlags, Sys};
    use veil_snp::perms::Vmpl;

    #[test]
    fn standard_cvm_boots_with_all_services() {
        let mut cvm = CvmBuilder::new().frames(2048).build().unwrap();
        assert!(cvm.veil_enabled());
        // LOG reserved storage exists and is sealed from the OS.
        let log_gpa = cvm.gate.monitor.layout.log_storage.start * 4096;
        assert!(cvm.hv.machine.write(Vmpl::Vmpl3, log_gpa, b"tamper").is_err());
        // Basic syscalls still work.
        let pid = cvm.spawn();
        let mut sys = cvm.sys(pid);
        let fd = sys.open("/tmp/ok", OpenFlags::rdwr_create()).unwrap();
        sys.write(fd, b"services up").unwrap();
    }

    #[test]
    fn kci_module_load_through_full_stack() {
        let mut cvm = CvmBuilder::new().frames(2048).build().unwrap();
        assert!(cvm.kernel.kci);
        let image = ModuleImage::build_signed("vio_net", 8192, &VENDOR_KEY);
        let (kernel, mut ctx) = cvm.kctx();
        kernel.load_module(&mut ctx, &image).unwrap();
        let module = &cvm.kernel.modules["vio_net"];
        assert!(module.kci_protected);
        // Installed text is write-protected from the OS but readable.
        let gpa = module.text_gfns[0] * 4096;
        assert!(cvm.hv.machine.read(Vmpl::Vmpl3, gpa, 8).is_ok());
        assert!(cvm.hv.machine.write(Vmpl::Vmpl3, gpa, b"patch").is_err());
    }

    #[test]
    fn attest_report_served_over_the_gate() {
        use veil_os::monitor::{MonRequest, MonResponse, MonitorChannel};
        use veil_snp::vcek::{ChainReport, ChainVerifier, TcbVersion};

        let mut cvm = CvmBuilder::new().frames(2048).build().unwrap();
        let nonce = [0x41; 32];
        let resp = cvm
            .gate
            .request(&mut cvm.hv, 0, MonRequest::AttestReport { nonce, report_data: [0x42; 64] })
            .unwrap();
        let MonResponse::Bytes(bytes) = resp else { panic!("expected report bytes") };
        assert_eq!(cvm.gate.services.attest.report_count(), 1);

        // Offline verification with KDS-style out-of-band VCEK.
        let report = ChainReport::from_bytes(&bytes).unwrap();
        let tcb = cvm.hv.machine.tcb_version();
        let mut verifier =
            ChainVerifier::new(cvm.hv.machine.launch_measurement().unwrap(), TcbVersion(0));
        verifier.trust_tcb(tcb, cvm.hv.machine.kds_vcek(tcb));
        assert_eq!(verifier.verify(&report, &nonce), Ok(()));
        // Replaying the same report must fail.
        assert!(verifier.verify(&report, &nonce).is_err());

        // Batched path: a deferred report drains without error (the
        // response is fire-and-forget).
        cvm.gate
            .request_deferred(
                &mut cvm.hv,
                0,
                MonRequest::AttestReport { nonce: [0x43; 32], report_data: [0; 64] },
            )
            .unwrap();
        cvm.flush_gate().unwrap();
        assert_eq!(cvm.gate.deferred_errors(), 0);
        assert_eq!(cvm.gate.services.attest.report_count(), 2);
    }

    #[test]
    fn veil_log_records_flow_to_protected_storage() {
        let mut cvm = CvmBuilder::new().frames(2048).build().unwrap();
        cvm.kernel.audit.mode = AuditMode::VeilLog;
        cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();
        let pid = cvm.spawn();
        let mut sys = cvm.sys(pid);
        let fd = sys.open("/tmp/audited", OpenFlags::rdwr_create()).unwrap();
        sys.write(fd, b"x").unwrap();
        sys.close(fd).unwrap();
        // Batched gate path: the records sit in the ring until a drain.
        cvm.flush_gate().unwrap();
        assert_eq!(cvm.kernel.audit_failures, 0);
        assert_eq!(cvm.gate.services.log.record_count(), 3, "open+write+close");
        // Records live in Dom_SER storage, not kernel memory.
        assert!(cvm.kernel.audit.kaudit_log.is_empty());
    }
}
