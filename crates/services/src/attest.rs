//! VeilS-ATT: chain attestation reports as a protected service.
//!
//! The untrusted kernel relays a remote verifier's challenge through the
//! gate (`MonRequest::AttestReport`); the `Dom_SER` side asks the simulated
//! SEV firmware for a full VCEK-chain report — chip seed → TCB-versioned
//! VCEK → launch-measurement-bound attestation key, with DICE-style
//! per-stage certificates (see [`veil_snp::vcek`]) — and answers with the
//! report's stable wire bytes. The kernel never sees key material, only
//! the serialized report it cannot forge; the verifier checks the whole
//! chain offline against VCEKs obtained out of band.
//!
//! Reports claim VMPL-0: the evidence covers the VeilMon TCB that
//! provisioned this service, matching the existing channel-handshake path
//! (`Monitor::begin_channel`).

use veil_hv::Hypervisor;
use veil_os::error::OsError;
use veil_snp::perms::Vmpl;

/// The VeilS-ATT service state.
#[derive(Debug, Default)]
pub struct VeilAttest {
    reports: u64,
}

impl VeilAttest {
    /// A fresh service.
    pub fn new() -> Self {
        VeilAttest::default()
    }

    /// Produces the serialized chain report for `nonce`/`report_data`.
    /// Runs on the trusted side after the gate's switch; the firmware
    /// round trip charges one domain switch like the legacy `attest` path.
    ///
    /// # Errors
    ///
    /// [`OsError::MonitorRefused`] when launch has not finalized (no
    /// measurement exists to attest).
    pub fn report(
        &mut self,
        hv: &mut Hypervisor,
        nonce: [u8; 32],
        report_data: [u8; 64],
    ) -> Result<Vec<u8>, OsError> {
        let report = hv
            .machine
            .attest_chain(Vmpl::Vmpl0, nonce, report_data)
            .ok_or_else(|| OsError::MonitorRefused("launch not finalized".into()))?;
        self.reports += 1;
        Ok(report.to_bytes())
    }

    /// Reports served since boot.
    pub fn report_count(&self) -> u64 {
        self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veil_snp::machine::{Machine, MachineConfig};
    use veil_snp::vcek::{ChainReport, ChainVerifier, TcbVersion};

    #[test]
    fn report_requires_finalized_launch() {
        let machine = Machine::new(MachineConfig { frames: 64, ..MachineConfig::default() });
        let mut hv = Hypervisor::new(machine);
        let mut att = VeilAttest::new();
        assert!(att.report(&mut hv, [0; 32], [0; 64]).is_err());
        hv.launch(&[(1, b"img".to_vec())], 2).unwrap();
        let bytes = att.report(&mut hv, [7; 32], [8; 64]).unwrap();
        assert_eq!(att.report_count(), 1);
        // The bytes verify against the machine's own KDS-derived VCEK.
        let report = ChainReport::from_bytes(&bytes).unwrap();
        let tcb = hv.machine.tcb_version();
        let mut v = ChainVerifier::new(hv.machine.launch_measurement().unwrap(), TcbVersion(0));
        v.trust_tcb(tcb, hv.machine.kds_vcek(tcb));
        assert_eq!(v.verify(&report, &[7; 32]), Ok(()));
    }
}
