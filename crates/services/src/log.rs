//! VeilS-LOG: system audit log protection (§6.3).
//!
//! A large reserved region in `Dom_SER` memory holds audit records in an
//! append-only layout. The kernel's `audit_log_end` hook relays each
//! record through the IDCB + domain switch *before* the audited event
//! proceeds (execute-ahead), so records survive a later kernel
//! compromise. Only the remote user — over the attested secure channel —
//! can retrieve and prune the log.

use std::ops::Range;
use veil_core::monitor::Monitor;
use veil_core::remote::SecureChannel;
use veil_hv::Hypervisor;
use veil_os::audit::AuditRecord;
use veil_os::error::OsError;
use veil_snp::cost::CostCategory;
use veil_snp::mem::{gpa_of, PAGE_SIZE};
use veil_snp::perms::Vmpl;

/// Each stored record is `len(4 bytes) || payload`.
const LEN_PREFIX: usize = 4;

/// VeilS-LOG state.
#[derive(Debug, Default)]
pub struct VeilSLog {
    storage: Range<u64>,
    /// Write offset in bytes from the start of storage.
    head: u64,
    /// Records currently stored.
    records: u64,
    /// Records refused because storage was full.
    pub dropped: u64,
}

impl VeilSLog {
    /// Binds the reserved storage region (called at boot).
    ///
    /// # Errors
    ///
    /// Fails if the layout reserved no storage.
    pub fn on_boot(&mut self, monitor: &mut Monitor) -> Result<(), OsError> {
        let storage = monitor.layout.log_storage.clone();
        if storage.is_empty() {
            return Err(OsError::Config("no log storage reserved".into()));
        }
        self.storage = storage;
        Ok(())
    }

    /// Total storage capacity in bytes.
    pub fn capacity(&self) -> u64 {
        (self.storage.end - self.storage.start) * PAGE_SIZE as u64
    }

    /// Bytes currently used.
    pub fn used(&self) -> u64 {
        self.head
    }

    /// Records currently stored.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    fn write_at(&self, hv: &mut Hypervisor, offset: u64, bytes: &[u8]) -> Result<(), OsError> {
        let gpa = gpa_of(self.storage.start) + offset;
        hv.machine.write(Vmpl::Vmpl1, gpa, bytes)?;
        Ok(())
    }

    fn read_at(&self, hv: &Hypervisor, offset: u64, len: usize) -> Result<Vec<u8>, OsError> {
        let gpa = gpa_of(self.storage.start) + offset;
        Ok(hv.machine.read(Vmpl::Vmpl1, gpa, len)?)
    }

    /// Appends one record (the `LogAppend` service request).
    ///
    /// # Errors
    ///
    /// `MonitorRefused("log storage full")` when the region is exhausted —
    /// the paper sizes the region so the user retrieves before overflow;
    /// refusing (rather than overwriting) preserves the append-only
    /// guarantee and the failure is visible to the operator.
    pub fn append(&mut self, hv: &mut Hypervisor, record: &[u8]) -> Result<(), OsError> {
        let needed = (LEN_PREFIX + record.len()) as u64;
        if self.head + needed > self.capacity() {
            self.dropped += 1;
            return Err(OsError::MonitorRefused("log storage full".into()));
        }
        let work = hv.machine.cost().veil_log_record + hv.machine.cost().copy(record.len());
        hv.machine.charge(CostCategory::AuditLog, work);
        self.write_at(hv, self.head, &(record.len() as u32).to_le_bytes())?;
        self.write_at(hv, self.head + LEN_PREFIX as u64, record)?;
        self.head += needed;
        self.records += 1;
        Ok(())
    }

    /// Reads every stored record (trusted-side accessor; used by
    /// retrieval and by tests to verify storage contents).
    ///
    /// # Errors
    ///
    /// Storage corruption (impossible through the public API) surfaces as
    /// a config error.
    pub fn read_all(&self, hv: &Hypervisor) -> Result<Vec<Vec<u8>>, OsError> {
        let mut out = Vec::with_capacity(self.records as usize);
        let mut offset = 0u64;
        while offset < self.head {
            let len_bytes = self.read_at(hv, offset, LEN_PREFIX)?;
            let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            if offset + (LEN_PREFIX + len) as u64 > self.head {
                return Err(OsError::Config("log storage corrupt".into()));
            }
            out.push(self.read_at(hv, offset + LEN_PREFIX as u64, len)?);
            offset += (LEN_PREFIX + len) as u64;
        }
        Ok(out)
    }

    /// Parses stored records into [`AuditRecord`]s (diagnostics).
    pub fn parsed_records(&self, hv: &Hypervisor) -> Result<Vec<AuditRecord>, OsError> {
        Ok(self.read_all(hv)?.iter().filter_map(|bytes| AuditRecord::from_bytes(bytes)).collect())
    }

    /// Remote retrieval (§6.3): the user sends a sealed `"retrieve"`
    /// command over the secure channel; the service returns every record
    /// sealed under the channel and — only then — prunes the storage
    /// ("only the remote user can ask for stored logs to be removed").
    ///
    /// # Errors
    ///
    /// An unauthenticated command is refused without touching the log.
    pub fn retrieve_for_user(
        &mut self,
        hv: &mut Hypervisor,
        service_channel: &mut SecureChannel,
        sealed_command: &[u8],
    ) -> Result<Vec<Vec<u8>>, OsError> {
        let command = service_channel
            .open(sealed_command)
            .map_err(|e| OsError::MonitorRefused(format!("bad retrieval command: {e}")))?;
        if command != b"retrieve-and-prune" {
            return Err(OsError::MonitorRefused("unknown log command".into()));
        }
        let records = self.read_all(hv)?;
        let sealed: Vec<Vec<u8>> = records.iter().map(|r| service_channel.seal(r)).collect();
        let crypt = hv.machine.cost().copy(self.head as usize) + records.len() as u64 * 64;
        hv.machine.charge(CostCategory::AuditLog, crypt);
        self.head = 0;
        self.records = 0;
        Ok(sealed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CvmBuilder;

    fn cvm() -> crate::Cvm {
        CvmBuilder::new().frames(2048).log_frames(2).build().unwrap()
    }

    #[test]
    fn append_and_read_back() {
        let mut cvm = cvm();
        let log = &mut cvm.gate.services.log;
        log.append(&mut cvm.hv, b"record one").unwrap();
        log.append(&mut cvm.hv, b"record two").unwrap();
        assert_eq!(log.record_count(), 2);
        let all = log.read_all(&cvm.hv).unwrap();
        assert_eq!(all, vec![b"record one".to_vec(), b"record two".to_vec()]);
    }

    #[test]
    fn storage_full_refuses_and_counts() {
        let mut cvm = cvm();
        let log = &mut cvm.gate.services.log;
        let big = vec![0xabu8; 4000];
        let mut stored = 0;
        while log.append(&mut cvm.hv, &big).is_ok() {
            stored += 1;
        }
        assert_eq!(stored, 2, "two 4 KB records fit in 2 frames");
        assert_eq!(log.dropped, 1);
        // Earlier records intact (append-only, no overwrite).
        assert_eq!(log.read_all(&cvm.hv).unwrap().len(), 2);
    }

    #[test]
    fn retrieval_requires_authentication() {
        let mut cvm = cvm();
        let shared = [9u8; 32];
        let mut user = SecureChannel::new(shared);
        let mut service = SecureChannel::new(shared);
        cvm.gate.services.log.append(&mut cvm.hv, b"evidence").unwrap();

        // A forged (unsealed) command fails.
        let err = cvm.gate.services.log.retrieve_for_user(
            &mut cvm.hv,
            &mut service.clone(),
            b"retrieve-and-prune",
        );
        assert!(err.is_err());
        assert_eq!(cvm.gate.services.log.record_count(), 1, "log untouched");

        // The genuine user command round-trips.
        let cmd = user.seal(b"retrieve-and-prune");
        let sealed =
            cvm.gate.services.log.retrieve_for_user(&mut cvm.hv, &mut service, &cmd).unwrap();
        assert_eq!(sealed.len(), 1);
        assert_eq!(user.open(&sealed[0]).unwrap(), b"evidence");
        assert_eq!(cvm.gate.services.log.record_count(), 0, "pruned after retrieval");
    }

    #[test]
    fn os_cannot_touch_storage_directly() {
        let mut cvm = cvm();
        cvm.gate.services.log.append(&mut cvm.hv, b"tamper target").unwrap();
        let gpa = gpa_of(cvm.gate.monitor.layout.log_storage.start);
        assert!(cvm.hv.machine.write(Vmpl::Vmpl3, gpa, b"override").is_err());
        assert!(cvm.hv.machine.read(Vmpl::Vmpl3, gpa, 16).is_err());
        // And neither can an enclave (VMPL-2).
        assert!(cvm.hv.machine.write(Vmpl::Vmpl2, gpa, b"override").is_err());
    }
}
