//! VeilS-ENC: shielded program execution (§6.2).
//!
//! SGX-style in-process enclaves at `Dom_ENC` (VMPL-2 + CPL-3):
//!
//! * **Finalization** — after the OS installs the enclave binary, the
//!   service revokes OS access to the enclave frames, *clones* the
//!   process page tables into protected memory, runs the two invariant
//!   scans (one-to-one virtual→physical mapping, physical disjointness
//!   across enclaves), and measures the initial state.
//! * **Entry/exit** — through a user-mapped per-thread GHCB, confined by
//!   the hypervisor to `Dom_ENC ↔ Dom_UNT` crossings.
//! * **Secure collaborative paging** — the OS keeps swap policy; pages
//!   leave `Dom_ENC` sealed (encrypt-then-MAC with a freshness counter)
//!   and only re-enter after integrity + freshness verification.
//! * **Permission/mapping synchronization** — OS changes to *non-enclave*
//!   regions are mirrored into the protected tables on request; changes
//!   to enclave regions are refused.

use std::collections::BTreeMap;
use veil_core::domain::Domain;
use veil_core::monitor::Monitor;
use veil_core::remote::SecureChannel;
use veil_crypto::{ChaCha20, HmacSha256, Sha256};
use veil_hv::{HvResponse, Hypervisor};
use veil_os::error::OsError;
use veil_snp::cost::CostCategory;
use veil_snp::ghcb::{Ghcb, GhcbExit};
use veil_snp::mem::{gpa_of, PAGE_SIZE};
use veil_snp::perms::{Vmpl, VmplPerms};
use veil_snp::pt::{AddressSpace, PteFlags};

/// A sealed (swapped-out) page's trusted metadata.
#[derive(Debug, Clone)]
struct SealedPage {
    /// Freshness counter bound into the seal.
    ctr: u64,
    /// Integrity tag over (vaddr, ctr, plaintext).
    tag: [u8; 32],
    /// PTE flags to restore on page-in.
    flags: PteFlags,
}

/// The measurement of an enclave's initial state (SHA-256 over page
/// addresses, permissions, and contents — §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnclaveMeasurement(pub [u8; 32]);

/// One live enclave.
#[derive(Debug)]
pub struct Enclave {
    /// Handle.
    pub id: u64,
    /// Owning process.
    pub pid: u32,
    /// VCPU the (single) enclave thread is pinned to (§7).
    pub vcpu: u32,
    /// Enclave virtual range base.
    pub base_vaddr: u64,
    /// Enclave range length in bytes.
    pub len: usize,
    /// The protected clone of the process page tables.
    pub aspace: AddressSpace,
    /// Enclave data frames by virtual page address.
    frames: BTreeMap<u64, u64>,
    /// Frames used by the cloned table hierarchy.
    pt_frames: Vec<u64>,
    /// Initial-state measurement.
    pub measurement: EnclaveMeasurement,
    /// User-mapped per-thread GHCB frame (primary thread).
    pub ghcb_gfn: u64,
    /// The `Dom_ENC` VMSA for the primary enclave thread.
    pub vmsa_gfn: u64,
    /// All threads: VCPU -> (VMSA frame, user GHCB frame). The primary
    /// thread is present too. §7's multi-threading extension: "VeilMon
    /// must create a VMSA for the enclave thread on each VCPU and
    /// synchronize them so that the thread can execute on any VCPU."
    threads: std::collections::BTreeMap<u32, (u64, u64)>,
    /// Root of the *OS* page tables (for mapping synchronization).
    os_cr3_gfn: u64,
    seal_key: [u8; 32],
    sealed: BTreeMap<u64, SealedPage>,
    next_ctr: u64,
}

impl Enclave {
    /// Whether `vaddr` falls inside the protected enclave range.
    pub fn contains(&self, vaddr: u64) -> bool {
        vaddr >= self.base_vaddr && vaddr < self.base_vaddr + self.len as u64
    }

    /// Number of resident enclave pages.
    pub fn resident_pages(&self) -> usize {
        self.frames.len()
    }

    /// Number of sealed (swapped-out) pages.
    pub fn sealed_pages(&self) -> usize {
        self.sealed.len()
    }

    /// Threads (VCPUs) this enclave can run on.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The (VMSA, GHCB) pair for a thread.
    pub fn thread(&self, vcpu: u32) -> Option<(u64, u64)> {
        self.threads.get(&vcpu).copied()
    }
}

/// A pending memory-sharing offer between two mutually-trusting
/// enclaves (§10's Chancel-style extension).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShareOffer {
    owner: u64,
    peer: u64,
    vaddr: u64,
    pages: u64,
}

/// VeilS-ENC state.
#[derive(Debug, Default)]
pub struct VeilSEnc {
    enclaves: BTreeMap<u64, Enclave>,
    next_id: u64,
    /// Enclaves rejected during finalization (invariant failures).
    pub rejected: u64,
    /// Entries + exits, for Fig. 5 style accounting.
    pub crossings: u64,
    /// Outstanding sharing offers awaiting the peer's acceptance.
    share_offers: Vec<ShareOffer>,
}

impl VeilSEnc {
    /// Looks up a live enclave.
    pub fn enclave(&self, id: u64) -> Option<&Enclave> {
        self.enclaves.get(&id)
    }

    fn enclave_mut(&mut self, id: u64) -> Result<&mut Enclave, OsError> {
        self.enclaves
            .get_mut(&id)
            .ok_or_else(|| OsError::MonitorRefused(format!("no enclave {id}")))
    }

    /// Finalizes an enclave the OS just installed (§6.2). Returns the
    /// enclave handle.
    ///
    /// # Errors
    ///
    /// Refused when: the range is empty/unmapped, a frame is shared or
    /// protected (other enclave / monitor memory), the one-to-one or
    /// disjointness invariants fail, or the GHCB frame is not shared.
    #[allow(clippy::too_many_arguments)]
    pub fn finalize(
        &mut self,
        monitor: &mut Monitor,
        hv: &mut Hypervisor,
        vcpu: u32,
        pid: u32,
        cr3_gfn: u64,
        base_vaddr: u64,
        len: usize,
        ghcb_gfn: u64,
    ) -> Result<u64, OsError> {
        let refuse = |this: &mut Self, why: String| {
            this.rejected += 1;
            Err(OsError::MonitorRefused(why))
        };
        // The user-mapped GHCB must really be hypervisor-shared.
        if Ghcb::at(&hv.machine, ghcb_gfn).is_err() {
            return refuse(self, format!("enclave GHCB {ghcb_gfn:#x} is not a shared page"));
        }
        // Walk the OS tables and collect every mapping (whole address
        // space — the enclave runs on the cloned tables exclusively).
        let os_aspace = AddressSpace::from_root(cr3_gfn);
        let mut mappings: Vec<(u64, u64, PteFlags)> = Vec::new();
        os_aspace.walk(&hv.machine, &mut |vaddr, pfn, flags| {
            mappings.push((vaddr, pfn, flags));
        });
        let enclave_pages: Vec<&(u64, u64, PteFlags)> = mappings
            .iter()
            .filter(|(v, _, _)| *v >= base_vaddr && *v < base_vaddr + len as u64)
            .collect();
        if enclave_pages.is_empty() {
            return refuse(self, "enclave range is unmapped".into());
        }
        // Invariant 1: one-to-one virtual -> physical inside the enclave.
        let mut pfns: Vec<u64> = enclave_pages.iter().map(|(_, p, _)| *p).collect();
        pfns.sort_unstable();
        let before = pfns.len();
        pfns.dedup();
        if pfns.len() != before {
            return refuse(self, "enclave mapping is not one-to-one (aliased frames)".into());
        }
        // Invariant 2: physical disjointness — no frame may belong to a
        // protected region, which includes every other enclave's frames.
        if monitor.sanitize_gfns(&hv.machine, &pfns).is_err() {
            return refuse(self, "enclave frames overlap protected memory".into());
        }

        // Clone the page tables into monitor-protected frames.
        let mut free = Vec::new();
        let needed = 8 + mappings.len() / 128;
        for _ in 0..needed {
            free.push(monitor.alloc_mon()?);
        }
        let clone =
            AddressSpace::new(&mut hv.machine, Vmpl::Vmpl0, &mut free).map_err(OsError::Pt)?;
        for (vaddr, pfn, flags) in &mappings {
            clone
                .map(&mut hv.machine, Vmpl::Vmpl0, &mut free, *vaddr, *pfn, *flags)
                .map_err(OsError::Pt)?;
        }
        // Return unused clone frames to the pool.
        for gfn in free {
            monitor.free_mon(gfn);
        }
        let pt_frames = clone.table_frames(&hv.machine);
        for gfn in &pt_frames {
            monitor.protect_frame(*gfn);
        }

        // Protect the enclave data frames: Dom_ENC gains user-level
        // access, Dom_SER manages, the OS loses everything. Measure as
        // we go (address, permissions, contents — §6.2).
        let mut hasher = Sha256::new();
        let mut frames = BTreeMap::new();
        let mut contents = [0u8; PAGE_SIZE];
        for (vaddr, pfn, flags) in enclave_pages {
            hv.machine.rmpadjust(
                Vmpl::Vmpl0,
                *pfn,
                Vmpl::Vmpl2,
                VmplPerms::rw().union(VmplPerms::USER_EXEC),
            )?;
            hv.machine.rmpadjust(Vmpl::Vmpl0, *pfn, Vmpl::Vmpl3, VmplPerms::empty())?;
            hv.machine.read_into(Vmpl::Vmpl1, gpa_of(*pfn), &mut contents)?;
            hasher.update(&vaddr.to_le_bytes());
            hasher.update(&flags.bits().to_le_bytes());
            hasher.update(&contents);
            let sha = hv.machine.cost().sha256(PAGE_SIZE);
            hv.machine.charge(CostCategory::Other, sha);
            monitor.protect_frame(*pfn);
            frames.insert(*vaddr, *pfn);
        }
        let measurement = EnclaveMeasurement(hasher.finalize());

        // Create the Dom_ENC VMSA for the enclave thread (§5.2) and
        // announce it so the hypervisor can relay entries.
        let vmsa_gfn = monitor.create_domain_vmsa(hv, vcpu, Domain::Enc)?;
        {
            let vmsa = hv.machine.vmsa_mut(vmsa_gfn).expect("created");
            vmsa.regs.rip = base_vaddr;
            vmsa.regs.cr3 = clone.root_gfn();
        }
        hv.register_domain_vmsa(vcpu, Vmpl::Vmpl2, vmsa_gfn);

        let id = self.next_id;
        self.next_id += 1;
        let mut threads = std::collections::BTreeMap::new();
        threads.insert(vcpu, (vmsa_gfn, ghcb_gfn));
        self.enclaves.insert(
            id,
            Enclave {
                id,
                pid,
                vcpu,
                base_vaddr,
                len,
                aspace: clone,
                frames,
                pt_frames,
                measurement,
                ghcb_gfn,
                vmsa_gfn,
                threads,
                os_cr3_gfn: cr3_gfn,
                seal_key: monitor.random32(),
                sealed: BTreeMap::new(),
                next_ctr: 1,
            },
        );
        Ok(id)
    }

    /// Seals and releases one enclave page to the OS (§6.2 demand paging,
    /// eviction half).
    ///
    /// # Errors
    ///
    /// Refused for non-resident pages or foreign enclaves.
    pub fn page_out(
        &mut self,
        monitor: &mut Monitor,
        hv: &mut Hypervisor,
        id: u64,
        vaddr: u64,
    ) -> Result<(), OsError> {
        let crypt = hv.machine.cost().crypt_page;
        let enclave = self.enclave_mut(id)?;
        if !enclave.contains(vaddr) {
            return Err(OsError::MonitorRefused("page-out outside enclave range".into()));
        }
        let pfn = *enclave
            .frames
            .get(&vaddr)
            .ok_or_else(|| OsError::MonitorRefused("page not resident".into()))?;
        let (_, flags) = enclave.aspace.translate(&hv.machine, vaddr).map_err(OsError::Pt)?;
        let ctr = enclave.next_ctr;
        enclave.next_ctr += 1;

        // Seal: integrity hash (with freshness) over the plaintext, then
        // encrypt the page in place.
        let mut page = [0u8; PAGE_SIZE];
        hv.machine.read_into(Vmpl::Vmpl1, gpa_of(pfn), &mut page)?;
        let mut mac = HmacSha256::new(&enclave.seal_key);
        mac.update(&vaddr.to_le_bytes());
        mac.update(&ctr.to_le_bytes());
        mac.update(&page);
        let tag = mac.finalize();
        ChaCha20::new(&enclave.seal_key).apply_keystream(&Self::nonce(vaddr, ctr), 1, &mut page);
        hv.machine.write(Vmpl::Vmpl1, gpa_of(pfn), &page)?;
        hv.machine.charge(CostCategory::Other, crypt);

        // Remove the mapping and hand the (ciphertext) frame to the OS.
        enclave.aspace.unmap(&mut hv.machine, Vmpl::Vmpl0, vaddr).map_err(OsError::Pt)?;
        hv.machine.rmpadjust(Vmpl::Vmpl0, pfn, Vmpl::Vmpl2, VmplPerms::empty())?;
        hv.machine.rmpadjust(Vmpl::Vmpl0, pfn, Vmpl::Vmpl3, VmplPerms::all())?;
        enclave.frames.remove(&vaddr);
        enclave.sealed.insert(vaddr, SealedPage { ctr, tag, flags });
        monitor.unprotect_frame(pfn);
        Ok(())
    }

    fn nonce(vaddr: u64, ctr: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&(vaddr ^ ctr.rotate_left(32)).to_le_bytes());
        n[8..].copy_from_slice(&(ctr as u32).to_le_bytes());
        n
    }

    /// Verifies and re-installs a sealed page the OS fetched back (§6.2
    /// demand paging, fault half). `staging_gfn` holds the sealed bytes;
    /// `dest_gfn` is the fresh frame donated for the plaintext.
    ///
    /// # Errors
    ///
    /// Refused on integrity/freshness mismatch (rollback, splicing, or
    /// bit-rot) — the enclave page is *not* installed.
    pub fn page_in(
        &mut self,
        monitor: &mut Monitor,
        hv: &mut Hypervisor,
        id: u64,
        vaddr: u64,
        staging_gfn: u64,
        dest_gfn: u64,
    ) -> Result<(), OsError> {
        let crypt = hv.machine.cost().crypt_page;
        let enclave = self.enclave_mut(id)?;
        let meta = enclave
            .sealed
            .get(&vaddr)
            .ok_or_else(|| OsError::MonitorRefused("no sealed page at this address".into()))?
            .clone();
        let mut page = [0u8; PAGE_SIZE];
        hv.machine.read_into(Vmpl::Vmpl1, gpa_of(staging_gfn), &mut page)?;
        ChaCha20::new(&enclave.seal_key).apply_keystream(
            &Self::nonce(vaddr, meta.ctr),
            1,
            &mut page,
        );
        let mut mac = HmacSha256::new(&enclave.seal_key);
        mac.update(&vaddr.to_le_bytes());
        mac.update(&meta.ctr.to_le_bytes());
        mac.update(&page);
        if !veil_crypto::ct::eq(&mac.finalize(), &meta.tag) {
            return Err(OsError::MonitorRefused(
                "sealed page failed integrity/freshness verification".into(),
            ));
        }
        hv.machine.charge(CostCategory::Other, crypt);

        // Install: protect the destination frame, copy plaintext in, map.
        hv.machine.rmpadjust(
            Vmpl::Vmpl0,
            dest_gfn,
            Vmpl::Vmpl2,
            VmplPerms::rw().union(VmplPerms::USER_EXEC),
        )?;
        hv.machine.rmpadjust(Vmpl::Vmpl0, dest_gfn, Vmpl::Vmpl3, VmplPerms::empty())?;
        hv.machine.write(Vmpl::Vmpl1, gpa_of(dest_gfn), &page)?;
        let mut free: Vec<u64> = Vec::new();
        match enclave.aspace.map(
            &mut hv.machine,
            Vmpl::Vmpl0,
            &mut free,
            vaddr,
            dest_gfn,
            meta.flags,
        ) {
            Ok(()) => {}
            Err(veil_snp::pt::PtError::NoFrames) => {
                // Table level missing: pull monitor frames and retry.
                for _ in 0..4 {
                    free.push(monitor.alloc_mon()?);
                }
                enclave
                    .aspace
                    .map(&mut hv.machine, Vmpl::Vmpl0, &mut free, vaddr, dest_gfn, meta.flags)
                    .map_err(OsError::Pt)?;
                for gfn in free {
                    monitor.free_mon(gfn);
                }
            }
            Err(e) => return Err(OsError::Pt(e)),
        }
        enclave.frames.insert(vaddr, dest_gfn);
        enclave.sealed.remove(&vaddr);
        monitor.protect_frame(dest_gfn);
        Ok(())
    }

    /// §7's multi-threading extension, implemented: creates a `Dom_ENC`
    /// VMSA for the enclave on `vcpu` — synchronized with the enclave's
    /// protected page tables — so the enclave thread can run there. The
    /// OS scheduler requests this through the monitor (`EncAddThread`).
    ///
    /// # Errors
    ///
    /// Refused for unknown enclaves, duplicate threads, or a `ghcb_gfn`
    /// that is not a shared page.
    pub fn add_thread(
        &mut self,
        monitor: &mut Monitor,
        hv: &mut Hypervisor,
        id: u64,
        vcpu: u32,
        ghcb_gfn: u64,
    ) -> Result<u64, OsError> {
        if Ghcb::at(&hv.machine, ghcb_gfn).is_err() {
            return Err(OsError::MonitorRefused(format!(
                "thread GHCB {ghcb_gfn:#x} is not a shared page"
            )));
        }
        let (base_vaddr, root_gfn) = {
            let e = self
                .enclaves
                .get(&id)
                .ok_or_else(|| OsError::MonitorRefused(format!("no enclave {id}")))?;
            if e.threads.contains_key(&vcpu) {
                return Err(OsError::MonitorRefused(format!(
                    "enclave {id} already has a thread on vcpu {vcpu}"
                )));
            }
            (e.base_vaddr, e.aspace.root_gfn())
        };
        let vmsa_gfn = monitor.create_domain_vmsa(hv, vcpu, Domain::Enc)?;
        {
            let vmsa = hv.machine.vmsa_mut(vmsa_gfn).expect("created");
            // Synchronized state: same entry, same protected tables.
            vmsa.regs.rip = base_vaddr;
            vmsa.regs.cr3 = root_gfn;
        }
        hv.register_domain_vmsa(vcpu, Vmpl::Vmpl2, vmsa_gfn);
        self.enclave_mut(id)?.threads.insert(vcpu, (vmsa_gfn, ghcb_gfn));
        Ok(vmsa_gfn)
    }

    /// Synchronizes an OS change to a *non-enclave* mapping into the
    /// protected tables (mprotect/mmap/munmap on shared regions, §6.2).
    ///
    /// # Errors
    ///
    /// Enclave-range addresses are refused — only the enclave itself may
    /// change those (via its GHCB).
    pub fn perm_sync(
        &mut self,
        hv: &mut Hypervisor,
        id: u64,
        vaddr: u64,
        pte_flags: u64,
    ) -> Result<(), OsError> {
        let enclave = self.enclave_mut(id)?;
        if enclave.contains(vaddr) {
            return Err(OsError::MonitorRefused(
                "OS may not change enclave-region permissions".into(),
            ));
        }
        let flags = PteFlags::from_bits_truncate(pte_flags);
        enclave.aspace.protect(&mut hv.machine, Vmpl::Vmpl0, vaddr, flags).map_err(OsError::Pt)?;
        Ok(())
    }

    /// Mirrors an OS mapping change (mmap/munmap of shared regions) into
    /// the protected tables. For `map = true` the frames are looked up in
    /// the *OS* tables and must not be protected memory.
    ///
    /// # Errors
    ///
    /// Refused for enclave-range addresses or protected frames.
    pub fn map_sync(
        &mut self,
        monitor: &mut Monitor,
        hv: &mut Hypervisor,
        id: u64,
        base_vaddr: u64,
        pages: u64,
        map: bool,
    ) -> Result<(), OsError> {
        let enclave = self.enclave_mut(id)?;
        for i in 0..pages {
            let vaddr = base_vaddr + i * PAGE_SIZE as u64;
            if enclave.contains(vaddr) {
                return Err(OsError::MonitorRefused("OS may not remap the enclave region".into()));
            }
            if map {
                let os_aspace = AddressSpace::from_root(enclave.os_cr3_gfn);
                let (pfn, flags) = os_aspace.translate(&hv.machine, vaddr).map_err(OsError::Pt)?;
                monitor.sanitize_gfns(&hv.machine, &[pfn])?;
                let mut free: Vec<u64> = Vec::new();
                match enclave.aspace.map(&mut hv.machine, Vmpl::Vmpl0, &mut free, vaddr, pfn, flags)
                {
                    Ok(()) => {}
                    Err(veil_snp::pt::PtError::NoFrames) => {
                        for _ in 0..4 {
                            free.push(monitor.alloc_mon()?);
                        }
                        enclave
                            .aspace
                            .map(&mut hv.machine, Vmpl::Vmpl0, &mut free, vaddr, pfn, flags)
                            .map_err(OsError::Pt)?;
                        for gfn in free {
                            monitor.free_mon(gfn);
                        }
                    }
                    Err(veil_snp::pt::PtError::AlreadyMapped { .. }) => {}
                    Err(e) => return Err(OsError::Pt(e)),
                }
            } else {
                let _ = enclave.aspace.unmap(&mut hv.machine, Vmpl::Vmpl0, vaddr);
            }
        }
        Ok(())
    }

    /// §10's Chancel-style extension, implemented (half 1): an enclave
    /// *offers* a region of its own memory to a named peer. Nothing is
    /// mapped until the peer accepts — sharing requires mutual trust.
    /// Both halves arrive over the enclaves' own GHCBs (the OS has no
    /// request that can trigger them).
    ///
    /// # Errors
    ///
    /// Refused if the region is not fully resident enclave memory.
    pub fn offer_share(
        &mut self,
        id: u64,
        peer_id: u64,
        vaddr: u64,
        pages: u64,
    ) -> Result<(), OsError> {
        let enclave = self.enclave_mut(id)?;
        for i in 0..pages {
            let va = vaddr + i * PAGE_SIZE as u64;
            if !enclave.contains(va) || !enclave.frames.contains_key(&va) {
                return Err(OsError::MonitorRefused(
                    "share offer must cover resident enclave pages".into(),
                ));
            }
        }
        self.share_offers.retain(|o| !(o.owner == id && o.peer == peer_id));
        self.share_offers.push(ShareOffer { owner: id, peer: peer_id, vaddr, pages });
        Ok(())
    }

    /// Chancel-style sharing (half 2): the peer accepts an outstanding
    /// offer; the owner's frames are mapped into the peer's protected
    /// tables at `map_at` (peer-chosen, outside its own enclave range).
    /// Returns the mapped base.
    ///
    /// # Errors
    ///
    /// Refused without a matching offer, or if `map_at` collides with
    /// existing peer mappings.
    pub fn accept_share(
        &mut self,
        monitor: &mut Monitor,
        hv: &mut Hypervisor,
        id: u64,
        owner_id: u64,
        map_at: u64,
    ) -> Result<u64, OsError> {
        let offer_pos = self
            .share_offers
            .iter()
            .position(|o| o.owner == owner_id && o.peer == id)
            .ok_or_else(|| OsError::MonitorRefused("no matching share offer".into()))?;
        let offer = self.share_offers.remove(offer_pos);
        let pairs: Vec<(u64, u64)> = {
            let owner = self.enclave_mut(owner_id)?;
            (0..offer.pages)
                .map(|i| {
                    let src = offer.vaddr + i * PAGE_SIZE as u64;
                    (map_at + i * PAGE_SIZE as u64, owner.frames[&src])
                })
                .collect()
        };
        let peer = self.enclave_mut(id)?;
        if pairs.iter().any(|(va, _)| peer.contains(*va)) {
            return Err(OsError::MonitorRefused(
                "share window may not overlay the peer's enclave range".into(),
            ));
        }
        for (va, pfn) in &pairs {
            let mut free: Vec<u64> = Vec::new();
            match peer.aspace.map(
                &mut hv.machine,
                Vmpl::Vmpl0,
                &mut free,
                *va,
                *pfn,
                PteFlags::user_data(),
            ) {
                Ok(()) => {}
                Err(veil_snp::pt::PtError::NoFrames) => {
                    for _ in 0..4 {
                        free.push(monitor.alloc_mon()?);
                    }
                    peer.aspace
                        .map(
                            &mut hv.machine,
                            Vmpl::Vmpl0,
                            &mut free,
                            *va,
                            *pfn,
                            PteFlags::user_data(),
                        )
                        .map_err(OsError::Pt)?;
                    for gfn in free {
                        monitor.free_mon(gfn);
                    }
                }
                Err(e) => return Err(OsError::Pt(e)),
            }
        }
        Ok(map_at)
    }

    /// Tears down an enclave: scrubs its memory, restores OS access,
    /// releases the cloned tables and the VMSA.
    ///
    /// # Errors
    ///
    /// Unknown handles are refused.
    pub fn destroy(
        &mut self,
        monitor: &mut Monitor,
        hv: &mut Hypervisor,
        id: u64,
    ) -> Result<(), OsError> {
        let enclave = self
            .enclaves
            .remove(&id)
            .ok_or_else(|| OsError::MonitorRefused(format!("no enclave {id}")))?;
        for (_, pfn) in enclave.frames {
            // Confidentiality: scrub before the OS regains access.
            hv.machine.write(Vmpl::Vmpl1, gpa_of(pfn), &[0u8; PAGE_SIZE])?;
            hv.machine.rmpadjust(Vmpl::Vmpl0, pfn, Vmpl::Vmpl2, VmplPerms::empty())?;
            hv.machine.rmpadjust(Vmpl::Vmpl0, pfn, Vmpl::Vmpl3, VmplPerms::all())?;
            monitor.unprotect_frame(pfn);
        }
        for gfn in enclave.pt_frames {
            hv.machine.write(Vmpl::Vmpl0, gpa_of(gfn), &[0u8; PAGE_SIZE])?;
            monitor.unprotect_frame(gfn);
            monitor.free_mon(gfn);
        }
        for (_, (vmsa_gfn, _)) in enclave.threads {
            monitor.destroy_domain_vmsa(hv, vmsa_gfn)?;
        }
        Ok(())
    }

    /// Seals the enclave measurement for the remote user over the secure
    /// channel (enclave attestation, §6.2).
    pub fn report_measurement(&self, id: u64, channel: &mut SecureChannel) -> Option<Vec<u8>> {
        let e = self.enclaves.get(&id)?;
        let mut msg = Vec::with_capacity(40);
        msg.extend_from_slice(&id.to_le_bytes());
        msg.extend_from_slice(&e.measurement.0);
        Some(channel.seal(&msg))
    }

    /// Enclave entry: the untrusted application requests a switch to
    /// `Dom_ENC` through the user-mapped GHCB (§6.2). The caller must
    /// have loaded the enclave GHCB into the VCPU's GHCB MSR (the OS does
    /// this when scheduling the process).
    ///
    /// # Errors
    ///
    /// Hypervisor refusals (missing VMSA, scope violation) surface as
    /// monitor errors; a missing GHCB crashes the CVM (by design).
    pub fn enter(&mut self, hv: &mut Hypervisor, id: u64) -> Result<(), OsError> {
        let vcpu = self.primary_vcpu(id)?;
        self.crossing(hv, id, vcpu, Vmpl::Vmpl3, Vmpl::Vmpl2)
    }

    /// Enclave exit back to the untrusted application.
    ///
    /// # Errors
    ///
    /// See [`VeilSEnc::enter`].
    pub fn exit(&mut self, hv: &mut Hypervisor, id: u64) -> Result<(), OsError> {
        let vcpu = self.primary_vcpu(id)?;
        self.crossing(hv, id, vcpu, Vmpl::Vmpl2, Vmpl::Vmpl3)
    }

    /// Entry on a specific thread's VCPU (multi-threaded enclaves).
    ///
    /// # Errors
    ///
    /// See [`VeilSEnc::enter`]; also refused if no thread exists there.
    pub fn enter_on(&mut self, hv: &mut Hypervisor, id: u64, vcpu: u32) -> Result<(), OsError> {
        self.crossing(hv, id, vcpu, Vmpl::Vmpl3, Vmpl::Vmpl2)
    }

    /// Exit on a specific thread's VCPU.
    ///
    /// # Errors
    ///
    /// See [`VeilSEnc::enter_on`].
    pub fn exit_on(&mut self, hv: &mut Hypervisor, id: u64, vcpu: u32) -> Result<(), OsError> {
        self.crossing(hv, id, vcpu, Vmpl::Vmpl2, Vmpl::Vmpl3)
    }

    fn primary_vcpu(&self, id: u64) -> Result<u32, OsError> {
        self.enclaves
            .get(&id)
            .map(|e| e.vcpu)
            .ok_or_else(|| OsError::MonitorRefused(format!("no enclave {id}")))
    }

    fn crossing(
        &mut self,
        hv: &mut Hypervisor,
        id: u64,
        vcpu: u32,
        from: Vmpl,
        to: Vmpl,
    ) -> Result<(), OsError> {
        let ghcb_gfn = {
            let e = self
                .enclaves
                .get(&id)
                .ok_or_else(|| OsError::MonitorRefused(format!("no enclave {id}")))?;
            e.thread(vcpu)
                .ok_or_else(|| {
                    OsError::MonitorRefused(format!("enclave {id} has no thread on vcpu {vcpu}"))
                })?
                .1
        };
        let ghcb = Ghcb::at(&hv.machine, ghcb_gfn)?;
        ghcb.write_request(&mut hv.machine, from, GhcbExit::DomainSwitch, to.index() as u64, 0)?;
        match hv.vmgexit(vcpu, true)? {
            HvResponse::Switched { vmpl, .. } if vmpl == to => {
                self.crossings += 1;
                Ok(())
            }
            other => Err(OsError::MonitorRefused(format!("crossing refused: {other:?}"))),
        }
    }

    /// Number of live enclaves.
    pub fn count(&self) -> usize {
        self.enclaves.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CvmBuilder;

    #[test]
    fn unknown_enclave_ids_refused_everywhere() {
        let mut cvm = CvmBuilder::new().frames(2048).build().unwrap();
        let enc = &mut cvm.gate.services.enc;
        assert!(enc.enclave(42).is_none());
        assert!(enc.page_out(&mut cvm.gate.monitor, &mut cvm.hv, 42, 0x5000_0000).is_err());
        assert!(enc.perm_sync(&mut cvm.hv, 42, 0x1000, 0x7).is_err());
        assert!(enc.destroy(&mut cvm.gate.monitor, &mut cvm.hv, 42).is_err());
        assert!(enc.enter(&mut cvm.hv, 42).is_err());
        assert!(enc
            .report_measurement(42, &mut veil_core::remote::SecureChannel::new([1; 32]))
            .is_none());
        assert!(enc.offer_share(42, 43, 0x5000_0000, 1).is_err());
    }

    #[test]
    fn finalize_refuses_unshared_ghcb_and_counts() {
        let mut cvm = CvmBuilder::new().frames(2048).build().unwrap();
        let private = cvm.gate.monitor.layout.kernel_pool.start;
        let (monitor, enc) = (&mut cvm.gate.monitor, &mut cvm.gate.services.enc);
        let r = enc.finalize(monitor, &mut cvm.hv, 0, 1, private, 0x5000_0000, 4096, private);
        assert!(r.is_err());
        assert_eq!(enc.rejected, 1);
        assert_eq!(enc.count(), 0);
    }

    #[test]
    fn finalize_refuses_unmapped_range() {
        let mut cvm = CvmBuilder::new().frames(2048).build().unwrap();
        // A GHCB that IS shared, but an empty page-table root: no
        // mappings in the enclave range.
        let ghcb = cvm.gate.monitor.layout.kernel_ghcb_gfns(1)[0];
        let root = {
            let (kernel, _) = cvm.kctx();
            kernel.frames.alloc().unwrap()
        };
        cvm.hv.machine.write(Vmpl::Vmpl3, gpa_of(root), &[0u8; PAGE_SIZE]).unwrap();
        let (monitor, enc) = (&mut cvm.gate.monitor, &mut cvm.gate.services.enc);
        let r = enc.finalize(monitor, &mut cvm.hv, 0, 1, root, 0x5000_0000, 4096, ghcb);
        assert!(r.is_err());
        assert_eq!(enc.rejected, 1);
    }

    #[test]
    fn nonce_is_unique_per_vaddr_and_counter() {
        let a = VeilSEnc::nonce(0x5000_0000, 1);
        let b = VeilSEnc::nonce(0x5000_0000, 2);
        let c = VeilSEnc::nonce(0x5000_1000, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
