//! The deterministic metrics registry: counters, gauges, and cycle
//! histograms keyed by `(metric, domain, op)`, fed from the same event
//! stream as the [`veil_trace::Tracer`] so derived counters can never
//! drift from the trace.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use veil_trace::{exit_code, Event, EventCounters};

/// Domain value used when a metric is not attributable to a VMPL.
pub const DOMAIN_NONE: u8 = 0xff;

/// Stable label for a domain value (`vmpl0`..`vmpl3`, `all` for
/// [`DOMAIN_NONE`], `unknown` otherwise).
pub fn domain_label(domain: u8) -> &'static str {
    match domain {
        0 => "vmpl0",
        1 => "vmpl1",
        2 => "vmpl2",
        3 => "vmpl3",
        DOMAIN_NONE => "all",
        _ => "unknown",
    }
}

/// Stable label for a `VMGEXIT` exit code, used as the `op` dimension of
/// relay metrics.
pub fn exit_code_label(code: u64) -> &'static str {
    match code {
        exit_code::IO => "io",
        exit_code::MSR => "msr",
        exit_code::PAGE_STATE_CHANGE => "page_state_change",
        exit_code::DOMAIN_SWITCH => "domain_switch",
        exit_code::CREATE_VCPU => "create_vcpu",
        exit_code::DOORBELL => "doorbell",
        exit_code::PSC_BATCH => "psc_batch",
        exit_code::SHUTDOWN => "shutdown",
        exit_code::AUTOMATIC => "automatic",
        exit_code::UNKNOWN => "unknown",
        _ => "other",
    }
}

/// A metric series key: metric name plus the `(domain, op)` label pair.
/// `BTreeMap` ordering over this key is what makes every export
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Metric name (e.g. `events_total`, `relay_cycles`).
    pub metric: &'static str,
    /// Attributed domain ([`DOMAIN_NONE`] when not applicable).
    pub domain: u8,
    /// Operation label (empty when not applicable).
    pub op: &'static str,
}

impl Key {
    /// Builds a key.
    pub fn new(metric: &'static str, domain: u8, op: &'static str) -> Key {
        Key { metric, domain, op }
    }
}

/// Deterministic metrics registry.
///
/// All state lives in `BTreeMap`s so iteration (and therefore every
/// exporter) is ordered and reproducible. The registry is runtime gated:
/// when disabled every observation method returns immediately, so the
/// only disabled-mode cost at a call site is one branch.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, u64>,
    histograms: BTreeMap<Key, Histogram>,
    /// The same fold the tracer runs, re-run here so the drift test can
    /// prove tracer, ring replay, and registry agree.
    events: EventCounters,
    /// Per-VCPU open `VMGEXIT`: (exit cycles, exiting vmpl, exit code).
    /// The delta to the next `VmEnter` on the same VCPU is the relayed
    /// round-trip cost attributed to `relay_cycles{domain, op}`.
    pending_exit: BTreeMap<u32, (u64, u8, u64)>,
}

impl MetricsRegistry {
    /// A disabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Whether the registry is recording.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording. Enabling **resets** all series (the
    /// same contract as `Tracer::set_enabled`), so a run that turns
    /// metrics on observes only events from that point — deterministically
    /// even if the `VEIL_METRICS` environment knob already enabled them.
    pub fn set_enabled(&mut self, enabled: bool) {
        if enabled {
            self.counters.clear();
            self.gauges.clear();
            self.histograms.clear();
            self.events = EventCounters::default();
            self.pending_exit.clear();
        }
        self.enabled = enabled;
    }

    /// Adds `by` to the counter at `key`.
    pub fn inc_counter(&mut self, key: Key, by: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(key).or_insert(0) += by;
    }

    /// Sets the gauge at `key` to `value`.
    pub fn set_gauge(&mut self, key: Key, value: u64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert(key, value);
    }

    /// Records `value` into the histogram at `key`.
    pub fn record_hist(&mut self, key: Key, value: u64) {
        if !self.enabled {
            return;
        }
        self.histograms.entry(key).or_default().record(value);
    }

    /// Folds one trace event, stamped at virtual-cycle time `cycles`, into
    /// the registry: the embedded [`EventCounters`], a per-`(domain, op)`
    /// event counter, and the derived relay-latency histograms.
    pub fn observe_event(&mut self, cycles: u64, event: &Event) {
        if !self.enabled {
            return;
        }
        self.events.observe(event);
        let (domain, op) = event_labels(event);
        self.inc_counter(Key::new("events_total", domain, op), 1);
        match *event {
            Event::VmgExit { vcpu, vmpl, code, automatic: false, .. } => {
                self.pending_exit.insert(vcpu, (cycles, vmpl, code));
            }
            Event::VmEnter { vcpu, .. } => {
                if let Some((start, vmpl, code)) = self.pending_exit.remove(&vcpu) {
                    self.record_hist(
                        Key::new("relay_cycles", vmpl, exit_code_label(code)),
                        cycles.saturating_sub(start),
                    );
                }
            }
            Event::DomainSwitch { from, to, .. } => {
                self.inc_counter(Key::new("domain_switch_total", from, domain_label(to)), 1);
            }
            Event::Doorbell { target, depth, .. } => {
                self.record_hist(Key::new("ring_depth", target, "doorbell"), depth as u64);
            }
            Event::RingEnqueue { target, depth, .. } => {
                self.record_hist(Key::new("ring_depth", target, "enqueue"), depth as u64);
            }
            Event::DeferredError { count, .. } => {
                self.inc_counter(
                    Key::new("gate_deferred_errors_total", DOMAIN_NONE, ""),
                    u64::from(count),
                );
            }
            _ => {}
        }
        self.set_gauge(Key::new("cycles_total", DOMAIN_NONE, ""), cycles);
    }

    /// The registry's own event fold (the drift test compares this against
    /// `Tracer::counters()` and a ring replay).
    pub fn event_counters(&self) -> &EventCounters {
        &self.events
    }

    /// Counter series in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&Key, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Gauge series in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&Key, u64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// Histogram series in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&Key, &Histogram)> {
        self.histograms.iter()
    }

    /// The histogram at `key`, if any sample was recorded.
    pub fn histogram(&self, key: &Key) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Merges every histogram series named `metric` (across all domain/op
    /// labels) into one. Merge is associative and commutative, so the
    /// result is label-order independent.
    pub fn merged_histogram(&self, metric: &str) -> Histogram {
        let mut out = Histogram::new();
        for (k, h) in &self.histograms {
            if k.metric == metric {
                out.merge(h);
            }
        }
        out
    }

    /// Whether no series has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// The `(domain, op)` labels of an event's `events_total` series: the
/// executing/originating VMPL where the event carries one, and the stable
/// event name as the op.
fn event_labels(event: &Event) -> (u8, &'static str) {
    let domain = match *event {
        Event::Pvalidate { vmpl, .. } => vmpl,
        Event::RmpAdjust { executing, .. } => executing,
        Event::VmgExit { vmpl, .. } => vmpl,
        Event::VmEnter { vmpl, .. } => vmpl,
        Event::DomainSwitch { from, .. } => from,
        Event::NestedPageFault { vmpl, .. } => vmpl,
        Event::SyscallRedirect { .. } => 2,
        Event::AuditAppend { .. } => 3,
        Event::Doorbell { target, .. } => target,
        Event::RingEnqueue { target, .. } => target,
        Event::RmpTransition { .. }
        | Event::ChannelHandshake { .. }
        | Event::ModuleLoad { .. }
        | Event::ReqDispatch { .. }
        | Event::ReqComplete { .. }
        | Event::DeferredError { .. } => DOMAIN_NONE,
    };
    (domain, event.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exit_enter(reg: &mut MetricsRegistry, vcpu: u32, vmpl: u8, code: u64, t0: u64, t1: u64) {
        reg.observe_event(
            t0,
            &Event::VmgExit { vcpu, vmpl, code, user_ghcb: false, automatic: false },
        );
        reg.observe_event(t1, &Event::VmEnter { vcpu, vmpl });
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = MetricsRegistry::new();
        reg.observe_event(5, &Event::VmEnter { vcpu: 0, vmpl: 0 });
        reg.inc_counter(Key::new("x", DOMAIN_NONE, ""), 1);
        reg.record_hist(Key::new("h", DOMAIN_NONE, ""), 7);
        assert!(reg.is_empty());
        assert_eq!(reg.event_counters(), &EventCounters::default());
    }

    #[test]
    fn enable_resets_series() {
        let mut reg = MetricsRegistry::new();
        reg.set_enabled(true);
        reg.inc_counter(Key::new("x", DOMAIN_NONE, ""), 3);
        reg.set_enabled(true);
        assert!(reg.is_empty(), "re-enable must reset");
    }

    #[test]
    fn relay_histogram_brackets_exit_to_enter_per_vcpu() {
        let mut reg = MetricsRegistry::new();
        reg.set_enabled(true);
        exit_enter(&mut reg, 0, 3, exit_code::IO, 100, 2100);
        exit_enter(&mut reg, 1, 0, exit_code::DOMAIN_SWITCH, 200, 7335);
        let io = reg.histogram(&Key::new("relay_cycles", 3, "io")).unwrap();
        assert_eq!(io.count(), 1);
        assert_eq!(io.max(), 2000);
        let ds = reg.histogram(&Key::new("relay_cycles", 0, "domain_switch")).unwrap();
        assert_eq!(ds.max(), 7135);
        // Merged view spans both series.
        assert_eq!(reg.merged_histogram("relay_cycles").count(), 2);
    }

    #[test]
    fn automatic_exits_do_not_open_a_relay_bracket() {
        let mut reg = MetricsRegistry::new();
        reg.set_enabled(true);
        reg.observe_event(
            10,
            &Event::VmgExit {
                vcpu: 0,
                vmpl: 3,
                code: exit_code::AUTOMATIC,
                user_ghcb: false,
                automatic: true,
            },
        );
        reg.observe_event(20, &Event::VmEnter { vcpu: 0, vmpl: 3 });
        assert!(reg.histogram(&Key::new("relay_cycles", 3, "automatic")).is_none());
    }

    #[test]
    fn embedded_fold_matches_a_plain_fold() {
        let events = [
            Event::ChannelHandshake { step: 0 },
            Event::DomainSwitch { vcpu: 0, from: 3, to: 2, user_ghcb: false, automatic: false },
            Event::Pvalidate { vmpl: 0, gfn: 9, validate: true },
        ];
        let mut reg = MetricsRegistry::new();
        reg.set_enabled(true);
        let mut plain = EventCounters::default();
        for (i, e) in events.iter().enumerate() {
            reg.observe_event(i as u64, e);
            plain.observe(e);
        }
        assert_eq!(reg.event_counters(), &plain);
        assert_eq!(reg.event_counters().enclave_crossings, 1);
    }

    #[test]
    fn counters_iterate_in_deterministic_key_order() {
        let mut reg = MetricsRegistry::new();
        reg.set_enabled(true);
        reg.inc_counter(Key::new("b", 1, "y"), 1);
        reg.inc_counter(Key::new("a", 2, "z"), 1);
        reg.inc_counter(Key::new("a", 0, "x"), 1);
        let names: Vec<_> = reg.counters().map(|(k, _)| (k.metric, k.domain)).collect();
        assert_eq!(names, vec![("a", 0), ("a", 2), ("b", 1)]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(domain_label(0), "vmpl0");
        assert_eq!(domain_label(DOMAIN_NONE), "all");
        assert_eq!(domain_label(9), "unknown");
        assert_eq!(exit_code_label(exit_code::IO), "io");
        assert_eq!(exit_code_label(0xdead), "other");
    }
}
