//! Hierarchical span profiler with self/total cycle attribution.
//!
//! Spans are explicit `enter`/`exit` brackets against the virtual cycle
//! clock (`veil_snp::cost`), so nesting and durations are bit-reproducible
//! under `VEIL_TEST_SEED`. Aggregation is keyed by the full `;`-joined
//! call path rooted at the domain that entered the outermost span — the
//! exact shape flamegraph tooling consumes (`vmpl3;gate.request;gate.switch
//! 7135` per folded-stack line).

use crate::hist::Histogram;
use crate::registry::domain_label;
use std::collections::BTreeMap;

/// One open span on the stack.
#[derive(Debug, Clone)]
struct Frame {
    name: &'static str,
    start: u64,
    /// Cycles consumed by already-closed children (subtracted from total
    /// to obtain self time).
    child_cycles: u64,
    /// `;`-joined path including this frame.
    path: String,
}

/// Aggregated statistics for one `(path, domain)` series.
#[derive(Debug, Clone, Default)]
pub struct SpanStat {
    /// Completed span count.
    pub count: u64,
    /// Total cycles inside the span (children included).
    pub total_cycles: u64,
    /// Cycles attributed to the span itself (total minus children).
    pub self_cycles: u64,
    /// Distribution of per-invocation total durations.
    pub durations: Histogram,
}

/// The profiler: an open-span stack plus per-path aggregates.
///
/// Runtime gated like the registry; `enter`/`exit` are single-branch
/// no-ops when disabled. Unbalanced exits (a name that does not match the
/// top of the stack) are ignored rather than corrupting attribution, so a
/// span leaked through an error path degrades gracefully.
#[derive(Debug, Clone, Default)]
pub struct SpanProfiler {
    enabled: bool,
    stack: Vec<Frame>,
    /// Domain that entered the current outermost span (the flamegraph
    /// root frame).
    root_domain: u8,
    stats: BTreeMap<(String, u8), SpanStat>,
}

impl SpanProfiler {
    /// A disabled, empty profiler.
    pub fn new() -> Self {
        SpanProfiler::default()
    }

    /// Whether the profiler is recording.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording. Enabling **resets** all aggregates
    /// and abandons any open spans (same contract as the registry).
    pub fn set_enabled(&mut self, enabled: bool) {
        if enabled {
            self.stack.clear();
            self.stats.clear();
        }
        self.enabled = enabled;
    }

    /// Opens a span named `name` at virtual-cycle time `now`, attributed
    /// to `domain` when it is the outermost span.
    pub fn enter(&mut self, name: &'static str, domain: u8, now: u64) {
        if !self.enabled {
            return;
        }
        let path = match self.stack.last() {
            Some(parent) => {
                let mut p = String::with_capacity(parent.path.len() + 1 + name.len());
                p.push_str(&parent.path);
                p.push(';');
                p.push_str(name);
                p
            }
            None => {
                self.root_domain = domain;
                name.to_string()
            }
        };
        self.stack.push(Frame { name, start: now, child_cycles: 0, path });
    }

    /// Closes the span named `name` at virtual-cycle time `now`. Ignored
    /// if `name` is not the innermost open span.
    pub fn exit(&mut self, name: &'static str, now: u64) {
        if !self.enabled {
            return;
        }
        if self.stack.last().map(|f| f.name) != Some(name) {
            return;
        }
        let frame = self.stack.pop().expect("checked non-empty");
        let total = now.saturating_sub(frame.start);
        let self_cycles = total.saturating_sub(frame.child_cycles);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_cycles += total;
        }
        let stat = self.stats.entry((frame.path, self.root_domain)).or_default();
        stat.count += 1;
        stat.total_cycles += total;
        stat.self_cycles += self_cycles;
        stat.durations.record(total);
    }

    /// Number of currently open spans.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Aggregated series in `(path, domain)` order.
    pub fn stats(&self) -> impl Iterator<Item = (&str, u8, &SpanStat)> {
        self.stats.iter().map(|((path, domain), stat)| (path.as_str(), *domain, stat))
    }

    /// The aggregate for one exact path and domain.
    pub fn stat(&self, path: &str, domain: u8) -> Option<&SpanStat> {
        self.stats.get(&(path.to_string(), domain))
    }

    /// Whether no span has completed.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Renders the aggregates in folded-stack format, one line per
    /// `(path, domain)` series: `vmplN;path;sub self_cycles`. Lines are
    /// emitted in deterministic key order and series with zero self time
    /// are kept (flamegraph tools treat them as structure-only frames).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for ((path, domain), stat) in &self.stats {
            out.push_str(domain_label(*domain));
            out.push(';');
            out.push_str(path);
            out.push(' ');
            out.push_str(&stat.self_cycles.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = SpanProfiler::new();
        p.enter("a", 0, 0);
        p.exit("a", 10);
        assert!(p.is_empty());
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn self_time_excludes_children() {
        let mut p = SpanProfiler::new();
        p.set_enabled(true);
        p.enter("gate.request", 3, 0);
        p.enter("gate.switch", 3, 100);
        p.exit("gate.switch", 7235); // child total 7135
        p.exit("gate.request", 8000); // parent total 8000
        let parent = p.stat("gate.request", 3).unwrap();
        assert_eq!(parent.total_cycles, 8000);
        assert_eq!(parent.self_cycles, 8000 - 7135);
        let child = p.stat("gate.request;gate.switch", 3).unwrap();
        assert_eq!(child.total_cycles, 7135);
        assert_eq!(child.self_cycles, 7135);
        assert_eq!(child.durations.count(), 1);
    }

    #[test]
    fn sibling_children_both_subtract_from_parent() {
        let mut p = SpanProfiler::new();
        p.set_enabled(true);
        p.enter("root", 0, 0);
        p.enter("a", 0, 10);
        p.exit("a", 30);
        p.enter("b", 0, 40);
        p.exit("b", 90);
        p.exit("root", 100);
        let root = p.stat("root", 0).unwrap();
        assert_eq!(root.total_cycles, 100);
        assert_eq!(root.self_cycles, 100 - 20 - 50);
    }

    #[test]
    fn mismatched_exit_is_ignored() {
        let mut p = SpanProfiler::new();
        p.set_enabled(true);
        p.enter("a", 0, 0);
        p.exit("b", 5);
        assert_eq!(p.depth(), 1);
        p.exit("a", 10);
        assert_eq!(p.stat("a", 0).unwrap().total_cycles, 10);
    }

    #[test]
    fn folded_lines_root_at_domain() {
        let mut p = SpanProfiler::new();
        p.set_enabled(true);
        p.enter("gate.request", 3, 0);
        p.enter("gate.switch", 3, 0);
        p.exit("gate.switch", 7135);
        p.exit("gate.request", 7135);
        let folded = p.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["vmpl3;gate.request 0", "vmpl3;gate.request;gate.switch 7135"]);
        for line in lines {
            let (stack, n) = line.rsplit_once(' ').expect("folded line has a count");
            assert!(!stack.is_empty());
            n.parse::<u64>().expect("count is integer");
        }
    }

    #[test]
    fn reenable_resets_and_abandons_open_spans() {
        let mut p = SpanProfiler::new();
        p.set_enabled(true);
        p.enter("a", 0, 0);
        p.set_enabled(true);
        assert_eq!(p.depth(), 0);
        assert!(p.is_empty());
    }
}
