//! Deterministic metrics over the Veil trace stream.
//!
//! The paper's evaluation (§6, Tables 3–5) is about *latency
//! distributions* of privileged transitions — domain switches, syscall
//! redirects, RMP operations — not just counts. This crate turns the
//! deterministic event stream of [`veil_trace`] into that evidence:
//!
//! * [`Histogram`] — log-bucketed (HDR-style, powers-of-√2) cycle
//!   histograms with integer-only bucket math and a [`nearest_rank`]
//!   percentile convention shared with the testkit bench runner.
//! * [`MetricsRegistry`] — counters, gauges, and histograms keyed by
//!   `(metric, domain, op)`, fed by the same `Tracer` fold as the trace
//!   itself ([`MetricsRegistry::observe_event`]) so event-derived counters
//!   can never drift from the event stream.
//! * [`SpanProfiler`] — hierarchical spans with self/total cycle
//!   attribution per VMPL against the `veil_snp::cost` virtual clock.
//! * [`export`] — Prometheus text exposition, a JSON snapshot whose
//!   SHA-256 digest is golden-pinnable, and folded stacks for flamegraph
//!   tooling ([`SpanProfiler::folded`]).
//!
//! Everything is runtime gated behind the `VEIL_METRICS` environment knob
//! (see [`METRICS_ENV`]): disabled, every observation is a single-branch
//! no-op, and because metrics never charge cycles, never emit events, and
//! never touch the RNG, trace digests are bit-identical whether metrics
//! are on or off (the CI `tier1-metrics` twin enforces this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod span;

/// Exporters: Prometheus text, digestable JSON snapshots, folded stacks.
pub mod export;

pub use hist::{bucket_lower, bucket_of, nearest_rank, Histogram, BUCKETS};
pub use registry::{domain_label, exit_code_label, Key, MetricsRegistry, DOMAIN_NONE};
pub use span::{SpanProfiler, SpanStat};

/// Environment variable that enables metrics collection when set to
/// anything other than `0` (same contract as `VEIL_TRACE`).
pub const METRICS_ENV: &str = "VEIL_METRICS";

/// Whether `VEIL_METRICS` asks for metrics collection in this process.
pub fn env_enabled() -> bool {
    std::env::var_os(METRICS_ENV).is_some_and(|v| v != "0")
}
