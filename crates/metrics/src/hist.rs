//! Log-bucketed (HDR-style, powers-of-√2) cycle histograms.
//!
//! Bucket boundaries are powers of √2: each power-of-two decade is split
//! in half, giving a worst-case relative quantization error of ~41% per
//! bucket while keeping the whole `u64` range in 129 fixed buckets. All
//! bucket math is integer-only (no floating point in the record path), so
//! bucket assignment is bit-deterministic on every platform.
//!
//! Percentiles use the same nearest-rank convention as the testkit bench
//! runner — both call [`nearest_rank`] — so a percentile over raw samples
//! and a percentile over the histogram of those samples can only differ
//! by bucket quantization, never by rank convention.

/// Number of buckets: one zero bucket plus two buckets per power of two
/// across the full `u64` range (`2 * 64` halves, of which the first pair
/// collapses into values 1 and 2..=2).
pub const BUCKETS: usize = 129;

/// Returns the bucket index of `value`.
///
/// Index 0 holds zeros; value `v > 0` with `e = floor(log2 v)` lands in
/// bucket `1 + 2e` (lower half of the decade, `v < 2^e·√2`) or `2 + 2e`
/// (upper half). The half test `v ≥ 2^e·√2` is evaluated exactly as
/// `v² ≥ 2^(2e+1)` in 128-bit arithmetic.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    let e = 63 - value.leading_zeros() as usize;
    let upper_half = (value as u128) * (value as u128) >= 1u128 << (2 * e + 1);
    1 + 2 * e + usize::from(upper_half)
}

/// The smallest value mapping to bucket `index` (the bucket's lower
/// bound; exporters report it as the bucket's representative value).
pub fn bucket_lower(index: usize) -> u64 {
    assert!(index < BUCKETS, "bucket index out of range");
    if index == 0 {
        return 0;
    }
    let b = index - 1;
    let e = b / 2;
    if b.is_multiple_of(2) {
        1u64 << e
    } else {
        // First v with v² ≥ 2^(2e+1): ⌈√(2^(2e+1))⌉ = isqrt(2^(2e+1)-1)+1.
        isqrt((1u128 << (2 * e + 1)) - 1) as u64 + 1
    }
}

/// Integer square root (floor) over `u128`, Newton's method.
fn isqrt(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    let mut x = 1u128 << (n.ilog2() / 2 + 1);
    loop {
        let next = (x + n / x) / 2;
        if next >= x {
            return x;
        }
        x = next;
    }
}

/// Nearest-rank position (1-based) of percentile `p` among `n` samples:
/// `clamp(⌈p/100 · n⌉, 1, n)`. The single rank convention shared by the
/// testkit bench runner and [`Histogram::percentile`].
pub fn nearest_rank(n: usize, p: f64) -> usize {
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    rank.clamp(1, n.max(1))
}

/// A fixed-bucket cycle histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest sample (0 for an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile, quantized to the lower bound of the
    /// bucket holding the ranked sample. Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = nearest_rank(self.count as usize, p) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower(i);
            }
        }
        bucket_lower(BUCKETS - 1)
    }

    /// Nearest-rank percentile with linear interpolation inside the
    /// bucket holding the ranked sample.
    ///
    /// [`Histogram::percentile`] quantizes every rank in a bucket to the
    /// bucket's lower bound, so with sparse high-end counts p99 and p999
    /// collapse onto the same value (one √2-wide bucket holds the whole
    /// tail). This variant spreads the bucket's `c` samples evenly over
    /// its clamped `[lo, hi]` span and returns the value at the rank's
    /// position, so distinct ranks in the same bucket yield distinct,
    /// strictly rank-monotone values whenever the span allows. Exact
    /// `min`/`max` clamp the first and last occupied buckets, so the
    /// result never leaves the observed sample range.
    ///
    /// Kept separate from [`Histogram::percentile`] on purpose: that
    /// convention feeds digest-pinned exports and golden snapshots.
    pub fn percentile_interp(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = nearest_rank(self.count as usize, p) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if seen >= rank {
                let lo = bucket_lower(i).max(self.min);
                let hi =
                    if i + 1 < BUCKETS { bucket_lower(i + 1) - 1 } else { u64::MAX }.min(self.max);
                if hi <= lo {
                    return lo;
                }
                // Rank positions 1..=c map linearly onto (lo, hi]:
                // position c lands exactly on hi, earlier positions step
                // down by the even per-sample spacing.
                let pos = rank - before;
                return lo + ((hi - lo) as u128 * pos as u128 / c as u128) as u64;
            }
        }
        self.max
    }

    /// Merges `other` into `self`. Merge is associative and commutative:
    /// bucket counts, count, and sum add; min/max take the extremum.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates the non-empty buckets as `(lower_bound, count)`, in
    /// ascending bucket order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(i, &c)| (bucket_lower(i), c))
    }

    /// Raw bucket counts (index order; see [`bucket_lower`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_consistent_with_assignment() {
        // Bucket 2 ([√2, 2)) contains no integers and is permanently
        // empty; every other bucket's lower bound maps into it.
        for i in (0..BUCKETS).filter(|&i| i != 2) {
            let lo = bucket_lower(i);
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i} maps into it");
        }
        for i in 0..BUCKETS - 1 {
            let (lo, next) = (bucket_lower(i), bucket_lower(i + 1));
            assert!(next >= lo, "bounds are monotone at {i}");
            if i != 1 && i != 2 {
                assert!(next > lo, "bounds strictly increase at {i}");
                assert_eq!(bucket_of(next - 1), i, "last value below bucket {} boundary", i + 1);
            }
        }
    }

    #[test]
    fn bucket_of_known_values() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        // 2^e lands in the even "lower half" slot 1 + 2e.
        assert_eq!(bucket_of(2), 3);
        assert_eq!(bucket_of(4), 5);
        // √2·4096 ≈ 5793: 5792 is below, 5793 at/above.
        assert_eq!(bucket_of(5792), 1 + 2 * 12);
        assert_eq!(bucket_of(5793), 2 + 2 * 12);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded_by_sqrt2() {
        for v in [1u64, 3, 7, 100, 7135, 55_000, 1 << 40, u64::MAX / 3] {
            let lo = bucket_lower(bucket_of(v));
            assert!(lo <= v);
            // Bucket width < √2·lower, so v/lo < √2.
            assert!((v as f64) / (lo as f64) < std::f64::consts::SQRT_2 + 1e-9, "{v} vs {lo}");
        }
    }

    #[test]
    fn nearest_rank_matches_bench_convention() {
        assert_eq!(nearest_rank(100, 50.0), 50);
        assert_eq!(nearest_rank(100, 99.0), 99);
        assert_eq!(nearest_rank(100, 99.9), 100);
        assert_eq!(nearest_rank(1, 0.0), 1);
        assert_eq!(nearest_rank(20, 100.0), 20);
        assert_eq!(nearest_rank(0, 50.0), 1, "degenerate n=0 clamps to 1");
    }

    #[test]
    fn percentile_quantizes_to_bucket_lower_bound() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(7135);
        }
        let lo = bucket_lower(bucket_of(7135));
        assert_eq!(h.percentile(50.0), lo);
        assert_eq!(h.percentile(99.9), lo);
        assert_eq!(h.min(), 7135);
        assert_eq!(h.max(), 7135);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 713_500);
    }

    #[test]
    fn percentile_orders_buckets() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!(h.percentile(50.0) <= h.percentile(99.0));
        assert!(h.percentile(99.0) <= h.percentile(100.0));
        assert_eq!(h.percentile(100.0), bucket_lower(bucket_of(1000)));
        // The true p50 sample is 500; quantization stays within √2 below.
        let p50 = h.percentile(50.0);
        assert!(p50 <= 500 && 500 < (p50 as f64 * std::f64::consts::SQRT_2) as u64 + 2);
    }

    #[test]
    fn interp_separates_tail_percentiles_on_skewed_distribution() {
        // 1960 fast requests plus a 40-sample tail that all lands in one
        // √2-wide bucket — the BENCH_FLEET degenerate case: nearest-rank
        // quantization collapses p99 and p999 onto the bucket lower
        // bound, while interpolation keeps them distinct and ordered.
        let mut h = Histogram::new();
        for _ in 0..1960 {
            h.record(1000);
        }
        for i in 0..40u64 {
            h.record(17_000_000 + i * 150_000); // 17.0M..22.85M, one bucket
        }
        assert_eq!(
            h.percentile(99.0),
            h.percentile(99.9),
            "plain nearest-rank collapses the tail (the bug under test)"
        );
        let p99 = h.percentile_interp(99.0);
        let p999 = h.percentile_interp(99.9);
        assert!(p999 > p99, "interpolated p999 {p999} must exceed p99 {p99}");
        assert!(p99 >= 17_000_000 && p999 <= h.max(), "stay inside the observed range");
    }

    #[test]
    fn interp_is_rank_monotone_and_range_clamped() {
        let mut h = Histogram::new();
        for v in [10u64, 500, 7135, 7200, 7300, 90_000, 90_001] {
            h.record(v);
        }
        let ps = [1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0];
        let vals: Vec<u64> = ps.iter().map(|&p| h.percentile_interp(p)).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "monotone in rank: {vals:?}");
        assert!(vals.iter().all(|&v| v >= h.min() && v <= h.max()), "{vals:?}");
        assert_eq!(h.percentile_interp(100.0), h.max(), "top rank hits the exact max");
        // Empty and single-sample degenerate cases.
        assert_eq!(Histogram::new().percentile_interp(50.0), 0);
        let mut one = Histogram::new();
        one.record(7135);
        assert_eq!(one.percentile_interp(50.0), 7135);
        assert_eq!(one.percentile_interp(99.9), 7135);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        a.record(100);
        b.record(1000);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.sum(), 1110);
        assert_eq!(ab.min(), 10);
        assert_eq!(ab.max(), 1000);
        // Commutes.
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Merging an empty histogram is the identity.
        let mut id = ab.clone();
        id.merge(&Histogram::new());
        assert_eq!(id, ab);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
        assert_eq!(h.nonzero_buckets().count(), 0);
    }
}
