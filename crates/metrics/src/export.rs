//! Exporters: Prometheus text exposition, a digestable JSON snapshot, and
//! (via [`crate::SpanProfiler::folded`]) folded stacks for flamegraphs.
//!
//! Every exporter walks `BTreeMap`-ordered series, so output bytes are a
//! pure function of the recorded metrics — the JSON snapshot's SHA-256
//! digest is pinnable exactly like a golden trace digest.

use crate::hist::{bucket_lower, Histogram, BUCKETS};
use crate::registry::{domain_label, MetricsRegistry};
use crate::span::SpanProfiler;
use veil_crypto::sha256::{hex, Sha256};

/// Renders the registry and profiler in the Prometheus text exposition
/// format (version 0.0.4). Metric names are prefixed `veil_`; histogram
/// buckets are cumulative with `le` set to each bucket's inclusive upper
/// bound.
pub fn prometheus(registry: &MetricsRegistry, spans: &SpanProfiler) -> String {
    let mut out = String::new();
    let mut last_type: Option<(&str, &str)> = None;
    let mut type_line = |out: &mut String, metric: &'static str, kind: &'static str| {
        if last_type != Some((metric, kind)) {
            out.push_str("# TYPE veil_");
            out.push_str(metric);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_type = Some((metric, kind));
        }
    };

    for (key, value) in registry.counters() {
        type_line(&mut out, key.metric, "counter");
        push_series(&mut out, key.metric, "", key.domain, key.op, &[], value.to_string());
    }
    for (key, value) in registry.gauges() {
        type_line(&mut out, key.metric, "gauge");
        push_series(&mut out, key.metric, "", key.domain, key.op, &[], value.to_string());
    }
    for (key, hist) in registry.histograms() {
        type_line(&mut out, key.metric, "histogram");
        let mut cumulative = 0u64;
        for (i, &count) in hist.buckets().iter().enumerate() {
            if count == 0 {
                continue;
            }
            cumulative += count;
            let le = if i + 1 < BUCKETS {
                (bucket_lower(i + 1) - 1).to_string()
            } else {
                "+Inf".to_string()
            };
            push_series(
                &mut out,
                key.metric,
                "_bucket",
                key.domain,
                key.op,
                &[("le", &le)],
                cumulative.to_string(),
            );
        }
        push_series(
            &mut out,
            key.metric,
            "_bucket",
            key.domain,
            key.op,
            &[("le", "+Inf")],
            cumulative.to_string(),
        );
        push_series(&mut out, key.metric, "_sum", key.domain, key.op, &[], hist.sum().to_string());
        push_series(
            &mut out,
            key.metric,
            "_count",
            key.domain,
            key.op,
            &[],
            hist.count().to_string(),
        );
    }

    if !spans.is_empty() {
        out.push_str("# TYPE veil_span_self_cycles counter\n");
        for (path, domain, stat) in spans.stats() {
            push_span(&mut out, "span_self_cycles", path, domain, stat.self_cycles);
        }
        out.push_str("# TYPE veil_span_total_cycles counter\n");
        for (path, domain, stat) in spans.stats() {
            push_span(&mut out, "span_total_cycles", path, domain, stat.total_cycles);
        }
        out.push_str("# TYPE veil_span_count counter\n");
        for (path, domain, stat) in spans.stats() {
            push_span(&mut out, "span_count", path, domain, stat.count);
        }
    }
    out
}

fn push_series(
    out: &mut String,
    metric: &str,
    suffix: &str,
    domain: u8,
    op: &str,
    extra: &[(&str, &str)],
    value: String,
) {
    out.push_str("veil_");
    out.push_str(metric);
    out.push_str(suffix);
    out.push_str("{domain=\"");
    out.push_str(domain_label(domain));
    out.push('"');
    if !op.is_empty() {
        out.push_str(",op=\"");
        out.push_str(&label_escape(op));
        out.push('"');
    }
    for (k, v) in extra {
        out.push(',');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&label_escape(v));
        out.push('"');
    }
    out.push_str("} ");
    out.push_str(&value);
    out.push('\n');
}

fn push_span(out: &mut String, metric: &str, path: &str, domain: u8, value: u64) {
    out.push_str("veil_");
    out.push_str(metric);
    out.push_str("{domain=\"");
    out.push_str(domain_label(domain));
    out.push_str("\",path=\"");
    out.push_str(&label_escape(path));
    out.push_str("\"} ");
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Serializes the registry and profiler as one deterministic JSON
/// document. Same metrics → same bytes → same [`snapshot_digest_hex`],
/// which is what the golden snapshot test pins.
pub fn json_snapshot(registry: &MetricsRegistry, spans: &SpanProfiler) -> String {
    let mut out = String::from("{\n  \"counters\": [");
    let mut first = true;
    for (key, value) in registry.counters() {
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"metric\": \"{}\", \"domain\": \"{}\", \"op\": \"{}\", \"value\": {}}}",
            key.metric,
            domain_label(key.domain),
            json_escape(key.op),
            value
        ));
    }
    out.push_str("],\n  \"gauges\": [");
    first = true;
    for (key, value) in registry.gauges() {
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"metric\": \"{}\", \"domain\": \"{}\", \"op\": \"{}\", \"value\": {}}}",
            key.metric,
            domain_label(key.domain),
            json_escape(key.op),
            value
        ));
    }
    out.push_str("],\n  \"histograms\": [");
    first = true;
    for (key, hist) in registry.histograms() {
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"metric\": \"{}\", \"domain\": \"{}\", \"op\": \"{}\", {}}}",
            key.metric,
            domain_label(key.domain),
            json_escape(key.op),
            hist_json(hist)
        ));
    }
    out.push_str("],\n  \"spans\": [");
    first = true;
    for (path, domain, stat) in spans.stats() {
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"path\": \"{}\", \"domain\": \"{}\", \"count\": {}, \"total_cycles\": {}, \
             \"self_cycles\": {}, \"p50\": {}, \"p99\": {}}}",
            json_escape(path),
            domain_label(domain),
            stat.count,
            stat.total_cycles,
            stat.self_cycles,
            stat.durations.percentile(50.0),
            stat.durations.percentile(99.0)
        ));
    }
    out.push_str("]\n}\n");
    out
}

/// The percentile/summary fields of one histogram as a JSON fragment
/// (`"count": .., "sum": .., .., "buckets": [[lower, count], ..]`).
pub fn hist_json(hist: &Histogram) -> String {
    let buckets: Vec<String> =
        hist.nonzero_buckets().map(|(lo, c)| format!("[{lo}, {c}]")).collect();
    format!(
        "\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}, \
         \"p999\": {}, \"buckets\": [{}]",
        hist.count(),
        hist.sum(),
        hist.min(),
        hist.max(),
        hist.percentile(50.0),
        hist.percentile(99.0),
        hist.percentile(99.9),
        buckets.join(", ")
    )
}

/// SHA-256 of `snapshot` (normally the output of [`json_snapshot`]) as
/// lowercase hex — the value golden snapshot tests pin.
pub fn snapshot_digest_hex(snapshot: &str) -> String {
    hex(&Sha256::digest(snapshot.as_bytes()))
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(", ");
    }
}

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double quote, and newline are the only characters with
/// escape sequences; everything else passes through verbatim. Without
/// this a hostile workload/op label (`evil"} 1`) would forge series.
pub fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Key, DOMAIN_NONE};
    use veil_trace::{exit_code, Event};

    fn sample() -> (MetricsRegistry, SpanProfiler) {
        let mut reg = MetricsRegistry::new();
        reg.set_enabled(true);
        reg.observe_event(
            100,
            &Event::VmgExit {
                vcpu: 0,
                vmpl: 3,
                code: exit_code::IO,
                user_ghcb: false,
                automatic: false,
            },
        );
        reg.observe_event(2100, &Event::VmEnter { vcpu: 0, vmpl: 3 });
        let mut spans = SpanProfiler::new();
        spans.set_enabled(true);
        spans.enter("gate.request", 3, 0);
        spans.exit("gate.request", 7135);
        (reg, spans)
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let (reg, spans) = sample();
        let text = prometheus(&reg, &spans);
        assert!(text.contains("# TYPE veil_events_total counter"));
        assert!(text.contains("veil_events_total{domain=\"vmpl3\",op=\"vmgexit\"} 1"));
        assert!(text.contains("# TYPE veil_relay_cycles histogram"));
        assert!(text.contains("veil_relay_cycles_count{domain=\"vmpl3\",op=\"io\"} 1"));
        assert!(text.contains("veil_relay_cycles_sum{domain=\"vmpl3\",op=\"io\"} 2000"));
        assert!(text.contains("le=\"+Inf\"} 1"));
        assert!(text.contains("veil_span_self_cycles{domain=\"vmpl3\",path=\"gate.request\"} 7135"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("series and value");
            assert!(series.starts_with("veil_") && series.ends_with('}'), "{line}");
            assert!(value == "+Inf" || value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut reg = MetricsRegistry::new();
        reg.set_enabled(true);
        let key = Key::new("h", DOMAIN_NONE, "");
        reg.record_hist(key, 10);
        reg.record_hist(key, 10_000);
        let text = prometheus(&reg, &SpanProfiler::new());
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("veil_h_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert_eq!(bucket_counts, vec![1, 2, 2], "two buckets plus +Inf, cumulative");
    }

    #[test]
    fn json_snapshot_digest_is_stable_and_input_sensitive() {
        let (reg, spans) = sample();
        let a = json_snapshot(&reg, &spans);
        let b = json_snapshot(&reg, &spans);
        assert_eq!(a, b);
        assert_eq!(snapshot_digest_hex(&a), snapshot_digest_hex(&b));
        let (reg2, _) = sample();
        let mut reg2 = reg2;
        reg2.inc_counter(Key::new("extra", DOMAIN_NONE, ""), 1);
        assert_ne!(
            snapshot_digest_hex(&json_snapshot(&reg2, &spans)),
            snapshot_digest_hex(&a),
            "different metrics must produce a different digest"
        );
    }

    #[test]
    fn json_snapshot_has_all_sections() {
        let (reg, spans) = sample();
        let json = json_snapshot(&reg, &spans);
        for section in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\""] {
            assert!(json.contains(section), "missing {section}");
        }
        assert!(json.contains("\"p999\""));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn label_escape_handles_specials() {
        assert_eq!(label_escape("plain"), "plain");
        assert_eq!(label_escape("a\"b"), "a\\\"b");
        assert_eq!(label_escape("a\\b"), "a\\\\b");
        assert_eq!(label_escape("a\nb"), "a\\nb");
    }

    #[test]
    fn hostile_label_values_cannot_forge_series() {
        // An op label built to close the series and inject a fake one.
        let hostile: &'static str = "evil\"} 1\nveil_forged_total{domain=\"all\"";
        let mut reg = MetricsRegistry::new();
        reg.set_enabled(true);
        reg.inc_counter(Key::new("tenant_requests_total", DOMAIN_NONE, hostile), 1);
        reg.record_hist(Key::new("tenant_latency", DOMAIN_NONE, hostile), 7135);
        let text = prometheus(&reg, &SpanProfiler::new());
        assert!(
            !text.lines().any(|l| l.starts_with("veil_forged_total")),
            "injected series must not appear:\n{text}"
        );
        // Every non-comment line still parses as `name{labels} value`,
        // with the hostile bytes confined to an escaped label value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("series and value");
            assert!(series.starts_with("veil_") && series.ends_with('}'), "{line}");
            assert!(value == "+Inf" || value.parse::<f64>().is_ok(), "{line}");
        }
        assert!(text.contains("evil\\\"} 1\\nveil_forged_total"), "escaped value preserved");
        // The JSON snapshot stays parseable too: the quote is escaped.
        let json = json_snapshot(&reg, &SpanProfiler::new());
        assert!(json.contains("evil\\\"} 1\\nveil_forged_total"), "{json}");
    }
}
