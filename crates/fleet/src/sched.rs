//! Work-stealing scheduler over real OS threads.
//!
//! [`run_tasks`] fans a vector of tasks out to `workers` OS threads.
//! Each worker owns a deque seeded round-robin; when its own deque runs
//! dry it steals from the *back* of a victim's deque, visiting victims
//! in a per-worker order shuffled from `steal_seed`. The shuffle is the
//! point: the fleet determinism suite re-runs the same task set under
//! many steal orders and worker counts and asserts the *results* are
//! identical — scheduling must affect only who executes a task, never
//! what the task computes.
//!
//! Results come back indexed by submission order, so callers can merge
//! deterministically no matter which thread finished which task when.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use veil_testkit::rng::{splitmix64, TestRng};

/// Counters describing one [`run_tasks_with_stats`] execution. Purely
/// diagnostic — none of this may influence task results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Tasks executed in total (always the submitted count).
    pub executed: u64,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
}

/// Runs every task, returning results in submission order. See
/// [`run_tasks_with_stats`].
pub fn run_tasks<T, R, F>(tasks: Vec<T>, workers: usize, steal_seed: u64, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_tasks_with_stats(tasks, workers, steal_seed, f).0
}

/// Runs every task on a pool of `workers` OS threads (clamped to at
/// least 1), returning `(results, stats)` with results in submission
/// order. `f` receives `(task_index, task)`.
///
/// # Panics
///
/// Propagates a panic from any task after the scope joins.
pub fn run_tasks_with_stats<T, R, F>(
    tasks: Vec<T>,
    workers: usize,
    steal_seed: u64,
    f: F,
) -> (Vec<R>, SchedStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let total = tasks.len();
    let workers = workers.max(1).min(total.max(1));
    // Round-robin initial distribution: worker w starts with tasks
    // w, w+workers, w+2*workers, ...
    let mut queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        queues[i % workers].get_mut().expect("fresh queue").push_back((i, task));
    }
    let queues = &queues;
    let f = &f;
    let steals = AtomicU64::new(0);
    let steals_ref = &steals;

    let mut results: Vec<Option<R>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            // Per-worker victim order: every worker probes the other
            // queues in its own shuffled sequence, so contention (and
            // the determinism suite's coverage) varies with the seed.
            let mut victims: Vec<usize> = (0..workers).filter(|v| *v != w).collect();
            TestRng::from_seed(steal_seed ^ splitmix64(w as u64)).shuffle(&mut victims);
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, R)> = Vec::new();
                loop {
                    // Own work first, oldest first.
                    let own = queues[w].lock().expect("queue").pop_front();
                    if let Some((i, task)) = own {
                        out.push((i, f(i, task)));
                        continue;
                    }
                    // Steal newest-first from the first non-empty victim.
                    let mut stolen = None;
                    for &v in &victims {
                        if let Some(item) = queues[v].lock().expect("queue").pop_back() {
                            stolen = Some(item);
                            break;
                        }
                    }
                    match stolen {
                        Some((i, task)) => {
                            steals_ref.fetch_add(1, Ordering::Relaxed);
                            out.push((i, f(i, task)));
                        }
                        // Every deque empty: all tasks are taken, and
                        // tasks never spawn tasks, so this worker is done.
                        None => break,
                    }
                }
                out
            }));
        }
        let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
        for handle in handles {
            for (i, r) in handle.join().expect("worker panicked") {
                assert!(slots[i].is_none(), "task {i} executed twice");
                slots[i] = Some(r);
            }
        }
        slots
    });

    let results: Vec<R> = results
        .iter_mut()
        .enumerate()
        .map(|(i, slot)| slot.take().unwrap_or_else(|| panic!("task {i} never executed")))
        .collect();
    let stats = SchedStats { executed: total as u64, steals: steals.load(Ordering::Relaxed) };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_submission_order() {
        let tasks: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 4, 7] {
            let out = run_tasks(tasks.clone(), workers, 42, |i, t| {
                assert_eq!(i as u64, t);
                t * t
            });
            assert_eq!(out, (0..100).map(|t| t * t).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let hits: Vec<AtomicU32> = (0..200).map(|_| AtomicU32::new(0)).collect();
        let (_, stats) = run_tasks_with_stats((0..200).collect::<Vec<usize>>(), 4, 7, |_, t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.executed, 200);
    }

    #[test]
    fn zero_workers_clamps_to_one_and_empty_tasks_is_fine() {
        assert_eq!(run_tasks(vec![1, 2, 3], 0, 0, |_, t| t), vec![1, 2, 3]);
        assert_eq!(run_tasks(Vec::<u8>::new(), 4, 0, |_, t| t), Vec::<u8>::new());
    }

    #[test]
    fn steal_order_cannot_change_results() {
        let tasks: Vec<u64> = (0..64).collect();
        let baseline = run_tasks(tasks.clone(), 1, 0, |_, t| splitmix64(t));
        for seed in 0..16 {
            for workers in [2, 3, 4] {
                let got = run_tasks(tasks.clone(), workers, seed, |_, t| splitmix64(t));
                assert_eq!(got, baseline, "seed={seed} workers={workers}");
            }
        }
    }
}
