//! Multi-tenant fleet simulation: sharded Machines on real OS threads.
//!
//! The Fig. 5/6 benches drive **one** CVM. This crate drives a *fleet*:
//! N fully independent shards — each a complete Veil CVM with its own
//! RMP, TLB/verdict caches, trace stream, and metrics registry — serve
//! thousands of simulated tenants, multiplexed by a deterministic
//! virtual-time event loop and executed by a work-stealing scheduler
//! over real OS worker threads.
//!
//! The load is open-loop: tenants emit Poisson-style arrival streams
//! from seeded DRBGs, independent of service speed, so overload behaves
//! like overload (queueing shows up in the latency tail) instead of the
//! closed-loop self-throttling a call-and-wait driver would exhibit.
//!
//! Determinism is the design center. A shard's execution is a pure
//! function of `(config, shard id)`; worker threads only decide *when*
//! shards run. Hence a given seed yields a bit-identical
//! [`report::FleetReport::merged_digest_hex`] at **any** worker count —
//! which `tests/fleet_determinism.rs` pins — while wall-clock still
//! benefits from real parallelism on multi-core hosts.
//!
//! Module map:
//!
//! * [`sched`] — the work-stealing scheduler (per-worker deques, seeded
//!   steal order, results in submission order);
//! * [`shard`] — one shard's virtual-time event loop and
//!   [`shard::ShardReport`];
//! * [`report`] — fleet execution and the order-fixed merge, including
//!   critical-path attribution and the above-p99 tail breakdown;
//! * [`slo`] — per-tenant SLO ledgers: bounded latency sketches,
//!   burn-rate counters, deterministic top-K offenders;
//! * [`top`] — the `veiltop` console renderer over veilstat
//!   gate-service snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod sched;
pub mod shard;
pub mod slo;
pub mod top;

pub use report::{run_fleet, FleetReport, TailAttribution};
pub use sched::{run_tasks, run_tasks_with_stats, SchedStats};
pub use shard::{run_shard, ShardReport};
pub use slo::{Offender, SloReport, TenantSlo};
pub use veil_snp::trace::{Attribution, Component, ReqPath};
pub use veil_workloads::tenant::TenantKind;

/// Everything that parameterizes one fleet run. Two equal configs
/// produce bit-identical [`FleetReport`] digests on the same build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Master seed: arrival streams and steal order derive from it.
    pub seed: u64,
    /// Simulated tenants across the whole fleet.
    pub tenants: u32,
    /// Independent CVM shards; tenant `t` lives on shard `t % shards`.
    pub shards: u32,
    /// OS worker threads executing shards (clamped to at least 1).
    pub workers: usize,
    /// Requests each tenant issues.
    pub requests_per_tenant: u32,
    /// Mean of the exponential interarrival draw, in model cycles.
    pub mean_interarrival_cycles: u64,
    /// Which request profile every tenant runs.
    pub kind: TenantKind,
    /// Guest memory per shard, in frames.
    pub frames: u64,
    /// VeilS-LOG storage per shard, in frames.
    pub log_frames: u64,
}

impl Default for FleetConfig {
    /// A small smoke-scale fleet; benches override nearly everything.
    fn default() -> Self {
        FleetConfig {
            seed: 0x5eed,
            tenants: 64,
            shards: 4,
            workers: 1,
            requests_per_tenant: 8,
            mean_interarrival_cycles: 1_000_000,
            kind: TenantKind::Http,
            frames: 4096,
            log_frames: 512,
        }
    }
}

// The scheduler moves configs into worker closures by reference; the
// whole config must cross thread boundaries.
const _: () = {
    const fn assert_send<T: Send + Sync>() {}
    assert_send::<FleetConfig>();
};
