//! Per-tenant SLO accounting: bounded latency sketches, burn-rate
//! counters, and a deterministic top-K offender tracker.
//!
//! Every completed request folds its end-to-end latency into its
//! tenant's [`TenantSlo`]: a fixed-size [`Histogram`] sketch (129
//! buckets regardless of request count — the sketch is *bounded*), a
//! breach counter against the workload's [`TenantKind::slo_cycles`]
//! threshold, and running totals. The per-shard [`SloReport`]s merge
//! commutatively (`BTreeMap` keyed by tenant id), so the fleet-wide
//! report is bit-identical at any worker count — the same property the
//! trace digests pin.
//!
//! Burn rate follows the SRE convention: the SLO budgets
//! [`ERROR_BUDGET`] of requests over threshold; `burn_rate()` is the
//! observed breach fraction divided by that budget. 1.0 means the
//! budget is being consumed exactly as provisioned; 10.0 means ten
//! times too fast.
//!
//! [`TenantKind::slo_cycles`]: veil_workloads::tenant::TenantKind::slo_cycles

use std::collections::BTreeMap;
use veil_metrics::Histogram;

/// Fraction of requests the SLO allows over threshold (99% target).
pub const ERROR_BUDGET: f64 = 0.01;

/// One tenant's SLO ledger: a bounded sketch plus breach counters.
#[derive(Debug, Clone)]
pub struct TenantSlo {
    /// Requests observed.
    pub requests: u64,
    /// Requests over the SLO threshold.
    pub breaches: u64,
    /// Worst end-to-end latency seen, in cycles.
    pub worst_cycles: u64,
    /// Sum of end-to-end latencies (mean = total / requests).
    pub total_cycles: u128,
    /// Fixed-size latency sketch (129 buckets, bounded by construction).
    pub sketch: Histogram,
}

impl TenantSlo {
    fn new() -> Self {
        TenantSlo {
            requests: 0,
            breaches: 0,
            worst_cycles: 0,
            total_cycles: 0,
            sketch: Histogram::new(),
        }
    }

    fn observe(&mut self, latency: u64, slo_cycles: u64) {
        self.requests += 1;
        if latency > slo_cycles {
            self.breaches += 1;
        }
        self.worst_cycles = self.worst_cycles.max(latency);
        self.total_cycles += u128::from(latency);
        self.sketch.record(latency);
    }

    fn merge(&mut self, other: &TenantSlo) {
        self.requests += other.requests;
        self.breaches += other.breaches;
        self.worst_cycles = self.worst_cycles.max(other.worst_cycles);
        self.total_cycles += other.total_cycles;
        self.sketch.merge(&other.sketch);
    }
}

/// One row of the deterministic top-K offender table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offender {
    /// The tenant.
    pub tenant: u64,
    /// Requests the tenant issued.
    pub requests: u64,
    /// Requests over the SLO threshold.
    pub breaches: u64,
    /// Worst end-to-end latency, in cycles.
    pub worst_cycles: u64,
}

/// Per-tenant SLO ledgers for one shard (or, after merging, a fleet).
#[derive(Debug, Clone)]
pub struct SloReport {
    /// The SLO threshold every tenant is held to, in cycles.
    pub slo_cycles: u64,
    /// Ledgers keyed by tenant id (deterministic iteration order).
    pub tenants: BTreeMap<u64, TenantSlo>,
}

impl SloReport {
    /// An empty report holding tenants to `slo_cycles`.
    pub fn new(slo_cycles: u64) -> Self {
        SloReport { slo_cycles, tenants: BTreeMap::new() }
    }

    /// Folds one completed request in.
    pub fn observe(&mut self, tenant: u64, latency: u64) {
        self.tenants.entry(tenant).or_insert_with(TenantSlo::new).observe(latency, self.slo_cycles);
    }

    /// Merges another report in (commutative; thresholds must match —
    /// shards of one fleet share the workload profile).
    pub fn merge(&mut self, other: &SloReport) {
        debug_assert_eq!(self.slo_cycles, other.slo_cycles, "merging mismatched SLOs");
        for (&tenant, slo) in &other.tenants {
            self.tenants.entry(tenant).or_insert_with(TenantSlo::new).merge(slo);
        }
    }

    /// Requests observed across all tenants.
    pub fn requests(&self) -> u64 {
        self.tenants.values().map(|t| t.requests).sum()
    }

    /// Breaches across all tenants.
    pub fn breaches(&self) -> u64 {
        self.tenants.values().map(|t| t.breaches).sum()
    }

    /// Observed breach fraction divided by [`ERROR_BUDGET`]: 1.0 burns
    /// the budget exactly as provisioned, above 1.0 burns it faster.
    /// 0.0 when no requests were observed.
    pub fn burn_rate(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            return 0.0;
        }
        (self.breaches() as f64 / requests as f64) / ERROR_BUDGET
    }

    /// The `k` worst tenants by breach count, ties broken by worst
    /// latency (desc) then tenant id (asc) — a total, deterministic
    /// order, so the table is bit-stable across worker counts.
    pub fn top_offenders(&self, k: usize) -> Vec<Offender> {
        let mut rows: Vec<Offender> = self
            .tenants
            .iter()
            .map(|(&tenant, t)| Offender {
                tenant,
                requests: t.requests,
                breaches: t.breaches,
                worst_cycles: t.worst_cycles,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.breaches
                .cmp(&a.breaches)
                .then(b.worst_cycles.cmp(&a.worst_cycles))
                .then(a.tenant.cmp(&b.tenant))
        });
        rows.truncate(k);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_counts_breaches_against_threshold() {
        let mut r = SloReport::new(100);
        r.observe(7, 50);
        r.observe(7, 100); // at threshold: not a breach
        r.observe(7, 101);
        r.observe(9, 500);
        assert_eq!(r.requests(), 4);
        assert_eq!(r.breaches(), 2);
        let t7 = &r.tenants[&7];
        assert_eq!((t7.requests, t7.breaches, t7.worst_cycles), (3, 1, 101));
        assert_eq!(t7.sketch.count(), 3);
    }

    #[test]
    fn burn_rate_scales_with_breach_fraction() {
        let mut r = SloReport::new(100);
        for _ in 0..99 {
            r.observe(1, 10);
        }
        r.observe(1, 1000);
        // 1 breach in 100 requests = exactly the 1% budget.
        assert!((r.burn_rate() - 1.0).abs() < 1e-9, "{}", r.burn_rate());
        assert_eq!(SloReport::new(100).burn_rate(), 0.0);
    }

    #[test]
    fn merge_is_commutative_and_totals_add() {
        let mut a = SloReport::new(100);
        a.observe(1, 50);
        a.observe(2, 200);
        let mut b = SloReport::new(100);
        b.observe(2, 300);
        b.observe(3, 400);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.requests(), 4);
        assert_eq!(ab.breaches(), 3);
        assert_eq!(ab.requests(), ba.requests());
        assert_eq!(ab.breaches(), ba.breaches());
        assert_eq!(ab.tenants[&2].requests, 2);
        assert_eq!(ab.tenants[&2].worst_cycles, ba.tenants[&2].worst_cycles);
    }

    #[test]
    fn top_offenders_order_is_total_and_deterministic() {
        let mut r = SloReport::new(10);
        // Tenants 5 and 3 tie on breaches and worst: id breaks the tie.
        for t in [5u64, 3, 8] {
            r.observe(t, 100);
        }
        r.observe(8, 999);
        let top = r.top_offenders(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].tenant, 8, "more breaches first");
        assert_eq!(top[1].tenant, 3, "tie on (breaches, worst): lower id first");
        assert!(r.top_offenders(10).len() == 3, "k clamps to population");
    }
}
