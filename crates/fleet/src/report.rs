//! Fleet execution and deterministic merging of shard reports.
//!
//! [`run_fleet`] fans the shards out over the work-stealing scheduler
//! and folds the per-shard reports into one [`FleetReport`]. The merge
//! is order-fixed (shard 0, 1, 2, ...) regardless of which worker
//! finished which shard when, so the merged latency histogram, the
//! totals, and above all [`FleetReport::merged_digest_hex`] are
//! bit-identical at any worker count — that digest is the fleet's
//! determinism witness, pinned by `tests/fleet_determinism.rs`.

use crate::shard::{run_shard, ShardReport};
use crate::slo::SloReport;
use crate::{sched, FleetConfig};
use veil_crypto::sha256::{hex, Sha256};
use veil_metrics::Histogram;
use veil_snp::cost::CLOCK_HZ;
use veil_snp::trace::{Attribution, Component};

/// The merged result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// All shards' request latencies merged into one histogram.
    pub latency: Histogram,
    /// SHA-256 over every shard's (id, trace digest, metrics digest), in
    /// shard order — the fleet-wide determinism witness.
    pub merged_digest_hex: String,
    /// Requests completed across the fleet.
    pub total_ops: u64,
    /// Tenants served across the fleet.
    pub total_tenants: u32,
    /// Slowest shard's virtual completion time: the fleet finishes when
    /// its last shard does (shards run concurrently in virtual time).
    pub makespan_cycles: u64,
    /// Scheduler steal count (diagnostic only; excluded from the digest
    /// because it legitimately varies with worker count and seed).
    pub steals: u64,
    /// Fleet-wide critical-path attribution over every request.
    pub attribution: Attribution,
    /// Fleet-wide per-tenant SLO ledgers (merged in shard order).
    pub slo: SloReport,
    /// Where the latency tail comes from: the above-p99 requests broken
    /// down by dominant critical-path component.
    pub tail: TailAttribution,
}

/// The latency tail attributed to critical-path components: which part
/// of the pipeline the worst requests spent their cycles in.
#[derive(Debug, Clone, Default)]
pub struct TailAttribution {
    /// The tail threshold: interpolated p99 of the merged latency
    /// histogram, in cycles.
    pub threshold_cycles: u64,
    /// Requests strictly above the threshold.
    pub requests: u64,
    /// How many tail requests each component dominates, indexed in
    /// [`Component::ALL`] order.
    pub dominant: [u64; 4],
    /// Per-component cycle totals over the tail requests only.
    pub attribution: Attribution,
}

impl TailAttribution {
    /// Tail requests whose critical path `component` dominates.
    pub fn dominated_by(&self, component: Component) -> u64 {
        let idx = Component::ALL.iter().position(|&c| c == component).expect("component");
        self.dominant[idx]
    }

    /// The component dominating the most tail requests (ties break in
    /// [`Component::ALL`] order).
    pub fn dominant_component(&self) -> Component {
        let mut best = 0usize;
        for (i, &n) in self.dominant.iter().enumerate() {
            if n > self.dominant[best] {
                best = i;
            }
        }
        Component::ALL[best]
    }
}

impl FleetReport {
    /// Aggregate fleet throughput in requests per virtual second.
    pub fn aggregate_ops_per_sec(&self) -> f64 {
        self.total_ops as f64 * CLOCK_HZ as f64 / self.makespan_cycles.max(1) as f64
    }

    /// Tenants fully served per virtual second.
    pub fn tenants_per_sec(&self) -> f64 {
        f64::from(self.total_tenants) * CLOCK_HZ as f64 / self.makespan_cycles.max(1) as f64
    }

    /// The critical-path attribution as folded-stack lines (`flamegraph
    /// --fromfile` format: `frame;frame value`). Two stacks per
    /// component: one over all requests, one over the above-p99 tail.
    pub fn flame_folded(&self, root: &str) -> String {
        let mut out = String::new();
        for c in Component::ALL {
            out.push_str(&format!("{root};all;{} {}\n", c.label(), self.attribution.component(c)));
        }
        for c in Component::ALL {
            out.push_str(&format!(
                "{root};tail_p99;{} {}\n",
                c.label(),
                self.tail.attribution.component(c)
            ));
        }
        out
    }
}

/// Runs every shard of `cfg` across `cfg.workers` OS threads and merges
/// the reports.
///
/// # Panics
///
/// If any shard fails (boot or syscall error) — see
/// [`crate::shard::run_shard`].
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    let shards: Vec<u32> = (0..cfg.shards).collect();
    let (reports, stats) =
        sched::run_tasks_with_stats(shards, cfg.workers, cfg.seed, |_, shard| {
            run_shard(cfg, shard)
        });
    merge(reports, stats.steals)
}

/// Folds shard reports (already in shard order) into a [`FleetReport`].
fn merge(reports: Vec<ShardReport>, steals: u64) -> FleetReport {
    let mut latency = Histogram::new();
    let mut digest = Sha256::new();
    let mut total_ops = 0u64;
    let mut total_tenants = 0u32;
    let mut makespan_cycles = 0u64;
    let mut attribution = Attribution::default();
    let mut slo = SloReport::new(reports.first().map_or(0, |r| r.slo.slo_cycles));
    for r in &reports {
        latency.merge(&r.latency);
        digest.update(&r.shard.to_le_bytes());
        digest.update(r.trace_digest_hex.as_bytes());
        digest.update(r.metrics_digest_hex.as_bytes());
        total_ops += r.ops;
        total_tenants += r.tenants;
        makespan_cycles = makespan_cycles.max(r.makespan_cycles);
        attribution.merge(&r.attribution);
        slo.merge(&r.slo);
    }
    let tail = tail_attribution(&reports, &latency);
    FleetReport {
        shards: reports,
        latency,
        merged_digest_hex: hex(&digest.finalize()),
        total_ops,
        total_tenants,
        makespan_cycles,
        steals,
        attribution,
        slo,
        tail,
    }
}

/// Attributes the latency tail: every request whose end-to-end latency
/// exceeds the merged interpolated p99 is binned under its dominant
/// critical-path component. Pure fold over per-shard paths, so the
/// result is worker-count invariant like everything else in the merge.
fn tail_attribution(reports: &[ShardReport], latency: &Histogram) -> TailAttribution {
    let threshold = latency.percentile_interp(99.0);
    let mut tail = TailAttribution { threshold_cycles: threshold, ..TailAttribution::default() };
    for r in reports {
        for p in &r.paths {
            if p.end_to_end() > threshold {
                tail.requests += 1;
                let idx =
                    Component::ALL.iter().position(|&c| c == p.dominant()).expect("component");
                tail.dominant[idx] += 1;
                tail.attribution.add_path(p);
            }
        }
    }
    tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use veil_workloads::tenant::TenantKind;

    fn cfg(shards: u32, workers: usize) -> FleetConfig {
        FleetConfig {
            seed: 0xbeef,
            tenants: 8,
            shards,
            workers,
            requests_per_tenant: 4,
            mean_interarrival_cycles: 200_000,
            kind: TenantKind::Memcached,
            frames: 4096,
            log_frames: 512,
        }
    }

    #[test]
    fn merged_digest_is_worker_count_invariant() {
        let base = run_fleet(&cfg(2, 1));
        for workers in [2, 4] {
            let other = run_fleet(&cfg(2, workers));
            assert_eq!(other.merged_digest_hex, base.merged_digest_hex, "workers={workers}");
            assert_eq!(other.latency.count(), base.latency.count());
            assert_eq!(other.makespan_cycles, base.makespan_cycles);
        }
    }

    #[test]
    fn totals_add_up() {
        let r = run_fleet(&cfg(2, 2));
        assert_eq!(r.total_tenants, 8);
        assert_eq!(r.total_ops, 8 * 4);
        assert_eq!(r.latency.count(), r.total_ops);
        assert!(r.aggregate_ops_per_sec() > 0.0);
        assert!(r.tenants_per_sec() > 0.0);
    }

    #[test]
    fn sharding_shrinks_the_makespan() {
        // Same tenant population, overloaded arrivals: four shards must
        // drain the backlog in well under half the single-shard time.
        let mut one = cfg(1, 1);
        one.mean_interarrival_cycles = 10_000;
        let mut four = cfg(4, 1);
        four.mean_interarrival_cycles = 10_000;
        let r1 = run_fleet(&one);
        let r4 = run_fleet(&four);
        assert_eq!(r1.total_ops, r4.total_ops);
        assert!(
            r4.makespan_cycles * 2 < r1.makespan_cycles,
            "4 shards {} vs 1 shard {}",
            r4.makespan_cycles,
            r1.makespan_cycles
        );
    }
}
