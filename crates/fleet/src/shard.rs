//! One fleet shard: a fully independent CVM serving a slice of tenants
//! under a deterministic virtual-time event loop.
//!
//! A shard owns everything: its own RMP, TLB/verdict caches, trace
//! stream, and metrics registry. Nothing is shared with other shards, so
//! shards can execute on any worker thread in any order and still
//! produce bit-identical results — the scheduler decides *when* a shard
//! runs, never *what* it computes.
//!
//! # Virtual time
//!
//! The load generator is open-loop: each tenant emits a Poisson-style
//! arrival stream (exponential interarrivals drawn from its own
//! [`TestRng`], seeded from `seed ⊕ splitmix64(tenant)`), independent of
//! how fast the shard drains them. The shard replays the merged arrival
//! sequence against a single virtual clock:
//!
//! ```text
//! start      = max(arrival, vclock)      // queue behind earlier work
//! completion = start + service_cycles    // measured, not assumed
//! latency    = completion - arrival      // queueing + service
//! ```
//!
//! `service_cycles` comes from the machine's own cycle account around
//! the request, so everything the simulation charges — syscall costs,
//! audit records, gate relays, doorbell drains — lands in the latency
//! distribution. Wall-clock never enters the loop; a given seed produces
//! the same makespan, digests, and histograms at any worker count.

use crate::slo::SloReport;
use crate::FleetConfig;
use veil_metrics::{Histogram, Key, DOMAIN_NONE};
use veil_os::monitor::{MonRequest, MonResponse, MonitorChannel};
use veil_services::CvmBuilder;
use veil_snp::trace::{Attribution, CausalFold, Event, ReqPath};
use veil_testkit::rng::{splitmix64, TestRng};
use veil_workloads::fnv1a;
use veil_workloads::tenant::TenantSession;

/// Everything one shard produced, self-contained and mergeable.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Which shard this is.
    pub shard: u32,
    /// Tenants served by this shard.
    pub tenants: u32,
    /// Requests completed.
    pub ops: u64,
    /// Payload bytes moved by those requests.
    pub bytes: u64,
    /// FNV-1a over per-tenant checksums in tenant order.
    pub checksum: u64,
    /// Model cycles spent inside requests (excludes session setup).
    pub service_cycles: u64,
    /// Virtual completion time of the last request.
    pub makespan_cycles: u64,
    /// Per-request latency (queueing + service) in cycles.
    pub latency: Histogram,
    /// Gate requests issued by audited syscalls.
    pub gate_requests: u64,
    /// Doorbell drains rung by the batched gate path.
    pub doorbells: u64,
    /// Hypervisor-relayed domain switches.
    pub domain_switches: u64,
    /// Audit records the kernel failed to place (must stay 0).
    pub audit_failures: u64,
    /// The shard's deterministic trace digest.
    pub trace_digest_hex: String,
    /// The shard's deterministic JSON metrics snapshot.
    pub metrics_snapshot: String,
    /// SHA-256 of [`ShardReport::metrics_snapshot`].
    pub metrics_digest_hex: String,
    /// Every request's reconstructed critical path, in completion order
    /// (`ReqId = (shard, tenant, seq)`; the shard is this report).
    pub paths: Vec<ReqPath>,
    /// Per-component cycle totals over [`ShardReport::paths`].
    pub attribution: Attribution,
    /// Per-tenant SLO ledgers (sketches, breaches, top-K source).
    pub slo: SloReport,
    /// `ReqComplete` records the causal fold could not match to an open
    /// dispatch window (must stay 0; nonzero means lost propagation).
    pub unmatched_completes: u64,
    /// The JSON metrics snapshot served *by the veilstat gate service*
    /// over the full §4 request path — what `veiltop` renders.
    pub stat_snapshot: String,
}

// Reports flow back across the scheduler's thread boundary.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ShardReport>();
};

/// One arrival: request `k` of `tenant` at virtual time `arrival`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Arrival {
    arrival: u64,
    tenant: u64,
    k: u64,
}

/// Draws one exponential interarrival with the given mean, strictly
/// positive. Uses the top 53 bits so the uniform is exact in f64; the
/// result is a pure function of the rng stream (bit-identical across
/// runs of the same build).
fn exp_interarrival(rng: &mut TestRng, mean_cycles: u64) -> u64 {
    let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
    (-u.ln() * mean_cycles as f64) as u64 + 1
}

/// The merged, time-ordered arrival sequence for one shard's tenants.
/// Ties break on (tenant, k) so the order is total and deterministic.
fn arrival_schedule(cfg: &FleetConfig, shard: u32) -> Vec<Arrival> {
    let mut events = Vec::new();
    for tenant in
        (0..u64::from(cfg.tenants)).filter(|t| t % u64::from(cfg.shards) == u64::from(shard))
    {
        let mut rng = TestRng::from_seed(cfg.seed ^ splitmix64(tenant));
        let mut at = 0u64;
        for k in 0..u64::from(cfg.requests_per_tenant) {
            at += exp_interarrival(&mut rng, cfg.mean_interarrival_cycles);
            events.push(Arrival { arrival: at, tenant, k });
        }
    }
    events.sort_unstable();
    events
}

/// Boots shard `shard`'s CVM, replays its arrival schedule under virtual
/// time, and returns the self-contained report.
///
/// # Panics
///
/// On boot or syscall failure — a shard that cannot serve its tenants is
/// a harness bug, not a measurement.
pub fn run_shard(cfg: &FleetConfig, shard: u32) -> ShardReport {
    let mut cvm = CvmBuilder::new()
        .frames(cfg.frames)
        .vcpus(1)
        .log_frames(cfg.log_frames)
        .trace(true)
        .metrics(true)
        .batch(true)
        .shard(shard)
        .build()
        .expect("shard boot");
    cvm.kernel.audit.mode = veil_os::audit::AuditMode::VeilLog;
    cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();
    cvm.kernel.audit.rules.insert(veil_os::syscall::Sysno::Pwrite64);
    cvm.kernel.audit.rules.insert(veil_os::syscall::Sysno::Pread64);
    // Shard identity rides in the export as a gauge: the snapshot format
    // (golden-pinned) is unchanged, the *data* says which shard this is.
    cvm.hv
        .machine
        .metrics_mut()
        .set_gauge(Key::new("fleet_shard", DOMAIN_NONE, "id"), u64::from(shard));
    let pid = cvm.spawn();

    let events = arrival_schedule(cfg, shard);
    let locals: Vec<u64> = (0..u64::from(cfg.tenants))
        .filter(|t| t % u64::from(cfg.shards) == u64::from(shard))
        .collect();

    // Session setup (uncounted warm-up, like memaslap's populate phase).
    let mut sessions: std::collections::BTreeMap<u64, TenantSession> =
        std::collections::BTreeMap::new();
    for &tenant in &locals {
        let mut sys = cvm.sys(pid);
        let session = TenantSession::open(&mut sys, cfg.kind, tenant).expect("session open");
        sessions.insert(tenant, session);
    }

    let switches_before = cvm.hv.stats().domain_switches;
    let doorbells_before = cvm.hv.stats().doorbells;
    let requests_before = cvm.gate.gate_requests();

    // The causal fold is driven *incrementally* off the ring buffer
    // (between requests, while every record since the last drain is
    // still resident) so long runs that wrap the ring lose no records.
    let mut fold = CausalFold::new();
    let mut folded_seq = 0u64;
    for r in cvm.hv.machine.tracer().records_since(folded_seq) {
        fold.observe(r);
    }
    folded_seq = cvm.hv.machine.tracer().next_seq();

    let mut vclock = 0u64;
    let mut service_cycles = 0u64;
    let mut ops = 0u64;
    let mut slo = SloReport::new(cfg.kind.slo_cycles());
    let latency_key = Key::new("fleet_latency_cycles", DOMAIN_NONE, cfg.kind.label());
    for ev in &events {
        let start = ev.arrival.max(vclock);
        // Stamp the request id into the gate (ring slots it occupies
        // carry it) and open the dispatch window in the trace stream.
        cvm.gate.set_req_context(ev.tenant, ev.k);
        cvm.hv.machine.trace_event(Event::ReqDispatch {
            tenant: ev.tenant,
            req: ev.k,
            arrival: ev.arrival,
            start,
        });
        let before = cvm.hv.machine.cycles().total();
        {
            let mut sys = cvm.sys(pid);
            let session = sessions.get_mut(&ev.tenant).expect("session");
            session.run_request(&mut sys, ev.k).expect("request");
        }
        let service = cvm.hv.machine.cycles().total() - before;
        cvm.hv.machine.trace_event(Event::ReqComplete { tenant: ev.tenant, req: ev.k });
        let completion = start + service;
        vclock = completion;
        service_cycles += service;
        ops += 1;
        let latency = completion - ev.arrival;
        cvm.hv.machine.metrics_mut().record_hist(latency_key, latency);
        slo.observe(ev.tenant, latency);
        for r in cvm.hv.machine.tracer().records_since(folded_seq) {
            fold.observe(r);
        }
        folded_seq = cvm.hv.machine.tracer().next_seq();
    }

    // Teardown: close every session, then drain the gate ring so the
    // trace and the LOG store are complete before digesting.
    let mut checksum = 0u64;
    let mut bytes = 0u64;
    for &tenant in &locals {
        let mut sys = cvm.sys(pid);
        let session = sessions.get_mut(&tenant).expect("session");
        session.close(&mut sys).expect("session close");
        checksum = fnv1a(checksum, &session.checksum.to_le_bytes());
        bytes += session.bytes;
    }
    cvm.flush_gate().expect("flush");
    for r in cvm.hv.machine.tracer().records_since(folded_seq) {
        fold.observe(r);
    }

    // Fetch the metrics snapshot through the veilstat *gate service*:
    // the untrusted kernel asks, the trusted side answers over the full
    // §4 request path. This is the observability plane observing itself.
    let stat_snapshot = match cvm.gate.request(&mut cvm.hv, 0, MonRequest::StatSnapshot) {
        Ok(MonResponse::Bytes(bytes)) => String::from_utf8(bytes).expect("snapshot utf8"),
        other => panic!("veilstat snapshot failed: {other:?}"),
    };

    ShardReport {
        shard,
        tenants: locals.len() as u32,
        ops,
        bytes,
        checksum,
        service_cycles,
        makespan_cycles: vclock,
        latency: cvm.metrics().merged_histogram("fleet_latency_cycles"),
        gate_requests: cvm.gate.gate_requests() - requests_before,
        doorbells: cvm.hv.stats().doorbells - doorbells_before,
        domain_switches: cvm.hv.stats().domain_switches - switches_before,
        audit_failures: cvm.kernel.audit_failures,
        trace_digest_hex: cvm.trace_digest_hex(),
        metrics_snapshot: cvm.metrics_snapshot(),
        metrics_digest_hex: cvm.metrics_digest_hex(),
        attribution: fold.attribution(),
        unmatched_completes: fold.unmatched_completes,
        paths: fold.paths().to_vec(),
        slo,
        stat_snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veil_workloads::tenant::TenantKind;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            seed: 0xfee7,
            tenants: 8,
            shards: 2,
            workers: 1,
            requests_per_tenant: 6,
            mean_interarrival_cycles: 500_000,
            kind: TenantKind::Kvstore,
            frames: 4096,
            log_frames: 512,
        }
    }

    #[test]
    fn shard_replays_bit_identically() {
        let cfg = small_cfg();
        let a = run_shard(&cfg, 0);
        let b = run_shard(&cfg, 0);
        assert_eq!(a.trace_digest_hex, b.trace_digest_hex);
        assert_eq!(a.metrics_snapshot, b.metrics_snapshot);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
    }

    #[test]
    fn shards_partition_tenants_and_diverge() {
        let cfg = small_cfg();
        let s0 = run_shard(&cfg, 0);
        let s1 = run_shard(&cfg, 1);
        assert_eq!(s0.tenants + s1.tenants, cfg.tenants);
        assert_eq!(s0.ops + s1.ops, u64::from(cfg.tenants) * u64::from(cfg.requests_per_tenant));
        assert_ne!(s0.trace_digest_hex, s1.trace_digest_hex, "different tenants, different trace");
        assert_eq!(s0.audit_failures, 0);
        assert_eq!(s1.audit_failures, 0);
    }

    #[test]
    fn arrivals_are_sorted_and_seed_sensitive() {
        let cfg = small_cfg();
        let a = arrival_schedule(&cfg, 0);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.len(), 4 * 6, "4 local tenants x 6 requests");
        let mut cfg2 = small_cfg();
        cfg2.seed ^= 1;
        assert_ne!(arrival_schedule(&cfg2, 0), a);
    }

    #[test]
    fn critical_paths_decompose_latency_exactly() {
        let cfg = small_cfg();
        let r = run_shard(&cfg, 0);
        assert_eq!(r.paths.len() as u64, r.ops, "every request yields a path");
        assert_eq!(r.unmatched_completes, 0);
        for p in &r.paths {
            assert_eq!(
                p.queue_wait + p.batch_stall + p.relay + p.service,
                p.end_to_end(),
                "tenant {} req {}: components must partition e2e exactly",
                p.tenant,
                p.req
            );
        }
        // The attribution's total is the histogram's total latency: the
        // decomposition loses nothing against the latency the fleet
        // already reports.
        assert_eq!(r.attribution.total(), r.latency.sum());
        assert_eq!(r.attribution.requests, r.ops);
        assert_eq!(r.slo.requests(), r.ops);
        // The batched gate ran, so some cycles must be attributed to
        // relay (doorbell drains are hypervisor-relayed).
        assert!(r.attribution.relay > 0, "relay cycles must show up");
        // The gate-served veilstat snapshot carries this shard's id.
        assert!(r.stat_snapshot.contains("\"fleet_shard\""), "veilstat snapshot");
    }

    #[test]
    fn latency_includes_queueing_under_overload() {
        let mut cfg = small_cfg();
        // Arrivals far faster than service: the queue builds and the
        // tail latency must dwarf any single service time.
        cfg.mean_interarrival_cycles = 1_000;
        let r = run_shard(&cfg, 0);
        assert_eq!(r.latency.count(), r.ops);
        assert!(
            r.latency.percentile(99.0) > 10 * r.latency.percentile(1.0),
            "p99 {} should dwarf p1 {} under overload",
            r.latency.percentile(99.0),
            r.latency.percentile(1.0)
        );
    }
}
