//! `veiltop` — the fleet console: per-shard and per-tenant tables
//! rendered from veilstat gate-service snapshots and SLO ledgers.
//!
//! The renderer is a pure function of a [`FleetReport`], so the console
//! is as deterministic as the fleet itself: same seed, same screen. The
//! per-shard rows cross-check the harness-side counters against the
//! values each shard's *trusted side* served through the veilstat gate
//! service ([`crate::shard::ShardReport::stat_snapshot`]) — the console
//! reads what the protected service answered, not what the load
//! generator believes.
//!
//! Wired up as `inspect veiltop` and `fleet --top`.

use crate::report::FleetReport;
use veil_snp::trace::Component;

/// Pulls the value of the first series of `metric` out of a veilstat
/// JSON snapshot (counters and gauges both; the exporter emits
/// `{"metric": "...", ..., "value": N}` objects). Returns `None` when
/// the metric never fired.
pub fn snapshot_value(snapshot: &str, metric: &str) -> Option<u64> {
    let needle = format!("{{\"metric\": \"{metric}\"");
    let obj = &snapshot[snapshot.find(&needle)?..];
    let obj = &obj[..obj.find('}')?];
    let at = obj.find("\"value\": ")?;
    obj[at + "\"value\": ".len()..].trim().parse().ok()
}

fn pct(share: f64) -> String {
    format!("{:.1}%", share * 100.0)
}

/// Renders the console: fleet summary, critical-path attribution,
/// per-shard table, and the top-K SLO offender table.
pub fn render(r: &FleetReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "veiltop — {} shards, {} tenants, {} reqs | makespan {} cycles | {:.0} ops/s\n",
        r.shards.len(),
        r.total_tenants,
        r.total_ops,
        r.makespan_cycles,
        r.aggregate_ops_per_sec()
    ));
    out.push_str(&format!(
        "slo {} cycles | breaches {}/{} | burn rate {:.2}x budget\n",
        r.slo.slo_cycles,
        r.slo.breaches(),
        r.slo.requests(),
        r.slo.burn_rate()
    ));
    out.push_str("critical path: ");
    let parts: Vec<String> = Component::ALL
        .iter()
        .map(|&c| format!("{} {}", c.label(), pct(r.attribution.share(c))))
        .collect();
    out.push_str(&parts.join(" | "));
    out.push_str(&format!(
        "\ntail (> p99 = {} cycles): {} reqs, dominated by {}\n\n",
        r.tail.threshold_cycles,
        r.tail.requests,
        r.tail.dominant_component().label()
    ));

    out.push_str(&format!(
        "{:>5} {:>7} {:>7} {:>9} {:>9} {:>8} {:>11} {:>11}\n",
        "shard", "tenants", "ops", "doorbell", "switches", "deferr", "lat p50", "lat p99"
    ));
    for s in &r.shards {
        // Shard id and deferred-error count come from the snapshot the
        // shard's veilstat service served over the gate, not from the
        // harness: a disagreement would mean the trusted side and the
        // load generator see different worlds.
        let served_shard = snapshot_value(&s.stat_snapshot, "fleet_shard").unwrap_or(u64::MAX);
        debug_assert_eq!(served_shard, u64::from(s.shard), "veilstat shard id");
        let deferred = snapshot_value(&s.stat_snapshot, "gate_deferred_errors_total").unwrap_or(0);
        out.push_str(&format!(
            "{:>5} {:>7} {:>7} {:>9} {:>9} {:>8} {:>11} {:>11}\n",
            s.shard,
            s.tenants,
            s.ops,
            s.doorbells,
            s.domain_switches,
            deferred,
            s.latency.percentile_interp(50.0),
            s.latency.percentile_interp(99.0),
        ));
    }

    out.push_str(&format!(
        "\n{:>7} {:>7} {:>9} {:>13} — top SLO offenders\n",
        "tenant", "reqs", "breaches", "worst cycles"
    ));
    for o in r.slo.top_offenders(8) {
        out.push_str(&format!(
            "{:>7} {:>7} {:>9} {:>13}\n",
            o.tenant, o.requests, o.breaches, o.worst_cycles
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_value_scans_counters_and_gauges() {
        let snap = "{\n  \"counters\": [{\"metric\": \"gate_deferred_errors_total\", \
                    \"domain\": \"all\", \"op\": \"\", \"value\": 7}],\n  \"gauges\": \
                    [{\"metric\": \"fleet_shard\", \"domain\": \"all\", \"op\": \"id\", \
                    \"value\": 3}]\n}";
        assert_eq!(snapshot_value(snap, "gate_deferred_errors_total"), Some(7));
        assert_eq!(snapshot_value(snap, "fleet_shard"), Some(3));
        assert_eq!(snapshot_value(snap, "missing_metric"), None);
    }

    #[test]
    fn render_shows_shards_offenders_and_attribution() {
        let cfg = crate::FleetConfig {
            tenants: 4,
            shards: 2,
            requests_per_tenant: 3,
            mean_interarrival_cycles: 50_000,
            ..crate::FleetConfig::default()
        };
        let report = crate::run_fleet(&cfg);
        let screen = render(&report);
        assert!(screen.contains("veiltop — 2 shards, 4 tenants"), "{screen}");
        assert!(screen.contains("critical path: queue_wait"), "{screen}");
        assert!(screen.contains("top SLO offenders"), "{screen}");
        // One row per shard, each echoing the veilstat-served shard id.
        for s in &report.shards {
            assert_eq!(
                snapshot_value(&s.stat_snapshot, "fleet_shard"),
                Some(u64::from(s.shard)),
                "veilstat snapshot must carry the shard id"
            );
        }
        // Deterministic: same report, same screen.
        assert_eq!(screen, render(&report));
    }
}
