//! Deterministic random bit generator built on ChaCha20.
//!
//! The simulation must be reproducible, so every component that needs
//! randomness (key generation, nonce derivation, workload inputs that feed
//! crypto) pulls from a seeded [`Drbg`] rather than the OS entropy pool.

use crate::chacha20::ChaCha20;
use crate::sha256::Sha256;

/// A ChaCha20-based DRBG in counter mode.
///
/// # Example
///
/// ```
/// use veil_crypto::drbg::Drbg;
///
/// let mut a = Drbg::from_seed(b"attestation entropy");
/// let mut b = Drbg::from_seed(b"attestation entropy");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Drbg {
    cipher: ChaCha20,
    nonce: [u8; 12],
    counter: u32,
    buf: [u8; 64],
    buf_used: usize,
}

impl Drbg {
    /// Creates a DRBG whose key is the SHA-256 of `seed`.
    pub fn from_seed(seed: &[u8]) -> Self {
        let key = Sha256::digest(seed);
        Drbg {
            cipher: ChaCha20::new(&key),
            nonce: [0u8; 12],
            counter: 0,
            buf: [0u8; 64],
            buf_used: 64, // force refill on first use
        }
    }

    fn refill(&mut self) {
        self.buf = self.cipher.block(&self.nonce, self.counter);
        self.counter = self.counter.wrapping_add(1);
        if self.counter == 0 {
            // Extremely long streams roll the nonce forward.
            for b in self.nonce.iter_mut() {
                *b = b.wrapping_add(1);
                if *b != 0 {
                    break;
                }
            }
        }
        self.buf_used = 0;
    }

    /// Fills `out` with pseudo-random bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.buf_used == 64 {
                self.refill();
            }
            *byte = self.buf[self.buf_used];
            self.buf_used += 1;
        }
    }

    /// Returns 32 pseudo-random bytes (e.g. a key or seed).
    pub fn next_bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill(&mut out);
        out
    }

    /// Returns the next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns a pseudo-random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Drbg::from_seed(b"x");
        let mut b = Drbg::from_seed(b"x");
        let mut buf_a = [0u8; 100];
        let mut buf_b = [0u8; 100];
        a.fill(&mut buf_a);
        b.fill(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Drbg::from_seed(b"x");
        let mut b = Drbg::from_seed(b"y");
        assert_ne!(a.next_bytes32(), b.next_bytes32());
    }

    #[test]
    fn next_below_in_range() {
        let mut d = Drbg::from_seed(b"range");
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..50 {
                assert!(d.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn stream_is_not_constant() {
        let mut d = Drbg::from_seed(b"stream");
        let a = d.next_u64();
        let b = d.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn bytes_look_balanced() {
        // Crude sanity: over 64 KiB the ones-density should be near 50%.
        let mut d = Drbg::from_seed(b"balance");
        let mut buf = vec![0u8; 65536];
        d.fill(&mut buf);
        let ones: u64 = buf.iter().map(|b| b.count_ones() as u64).sum();
        let total = (buf.len() * 8) as f64;
        let density = ones as f64 / total;
        assert!((0.49..0.51).contains(&density), "density {density}");
    }
}
