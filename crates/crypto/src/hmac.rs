//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Veil uses HMAC-SHA-256 to sign attestation reports with the simulated
//! device key, to authenticate sealed enclave pages during collaborative
//! demand paging (§6.2), to verify kernel-module signatures in VeilS-KCI
//! (§6.1), and to authenticate log-retrieval requests in VeilS-LOG (§6.3).

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA-256.
///
/// # Example
///
/// ```
/// use veil_crypto::hmac::HmacSha256;
///
/// let tag = HmacSha256::mac(b"key", b"message");
/// assert!(HmacSha256::verify(b"key", b"message", &tag));
/// assert!(!HmacSha256::verify(b"key", b"tampered", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad_key: opad }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC computation.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Constant-time verification of `tag` against `data` under `key`.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        let want = Self::mac(key, data);
        crate::ct::eq(&want, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&HmacSha256::mac(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&HmacSha256::mac(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&HmacSha256::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&HmacSha256::mac(&key, b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"k");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), HmacSha256::mac(b"k", b"hello world"));
    }

    #[test]
    fn verify_rejects_truncated_tag() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(!HmacSha256::verify(b"k", b"m", &tag[..16]));
    }
}
