//! Constant-time comparison helpers.
//!
//! Signature and MAC verification inside VeilMon must not leak how many
//! prefix bytes matched; every comparison of secret-derived material in the
//! workspace goes through [`eq`].

/// Compares two byte slices in constant time (with respect to contents).
///
/// Returns `false` immediately when lengths differ — length is not secret
/// for any Veil use (tags and digests are fixed-size).
#[must_use]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Constant-time conditional select: returns `a` when `choice` is true.
#[must_use]
pub fn select_u64(choice: bool, a: u64, b: u64) -> u64 {
    let mask = (choice as u64).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(eq(b"abc", b"abc"));
        assert!(!eq(b"abc", b"abd"));
        assert!(!eq(b"abc", b"ab"));
        assert!(eq(b"", b""));
    }

    #[test]
    fn select_picks_correctly() {
        assert_eq!(select_u64(true, 7, 9), 7);
        assert_eq!(select_u64(false, 7, 9), 9);
    }
}
