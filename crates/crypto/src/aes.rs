//! AES-128 block cipher (FIPS 197) with CTR mode.
//!
//! The paper's MbedTLS case study (Fig. 5, Table 4) runs that library's
//! self-test benchmark — AES, SHA, etc. — inside an enclave. Our
//! MbedTLS-like workload (`veil-workloads::mbedtls`) runs the same style of
//! self-test over this implementation, so the enclave carries a realistic
//! crypto compute kernel.

/// Number of bytes in an AES block.
pub const BLOCK_LEN: usize = 16;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

fn gmul(a: u8, b: u8) -> u8 {
    let mut a = a;
    let mut b = b;
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// AES-128 with a pre-expanded key schedule.
///
/// # Example
///
/// ```
/// use veil_crypto::aes::Aes128;
///
/// let aes = Aes128::new(&[0u8; 16]);
/// let mut block = [0u8; 16];
/// aes.encrypt_block(&mut block);
/// let ct = block;
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, [0u8; 16]);
/// assert_ne!(ct, [0u8; 16]);
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[10]);
        for round in (1..10).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block);
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &self.round_keys[0]);
    }

    /// CTR-mode keystream application (encryption == decryption).
    ///
    /// The 16-byte counter block is `nonce (12 bytes) || counter (4 bytes BE)`.
    pub fn ctr_apply(&self, nonce: &[u8; 12], mut counter: u32, data: &mut [u8]) {
        for chunk in data.chunks_mut(16) {
            let mut block = [0u8; 16];
            block[..12].copy_from_slice(nonce);
            block[12..].copy_from_slice(&counter.to_be_bytes());
            self.encrypt_block(&mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

fn add_round_key(block: &mut [u8; 16], key: &[u8; 16]) {
    for i in 0..16 {
        block[i] ^= key[i];
    }
}

fn sub_bytes(block: &mut [u8; 16]) {
    for b in block.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(block: &mut [u8; 16]) {
    for b in block.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// Blocks are stored column-major: block[4*c + r] is row r, column c.
fn shift_rows(block: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [block[r], block[4 + r], block[8 + r], block[12 + r]];
        for c in 0..4 {
            block[4 * c + r] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(block: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [block[r], block[4 + r], block[8 + r], block[12 + r]];
        for c in 0..4 {
            block[4 * c + r] = row[(c + 4 - r) % 4];
        }
    }
}

fn mix_columns(block: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [block[4 * c], block[4 * c + 1], block[4 * c + 2], block[4 * c + 3]];
        block[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        block[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        block[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        block[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

fn inv_mix_columns(block: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [block[4 * c], block[4 * c + 1], block[4 * c + 2], block[4 * c + 3]];
        block[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        block[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        block[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        block[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    /// FIPS 197 Appendix B example vector.
    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "3925841d02dc09fbdc118597196a0b32");
        aes.decrypt_block(&mut block);
        assert_eq!(hex(&block), "3243f6a8885a308d313198a2e0370734");
    }

    /// FIPS 197 Appendix C.1 vector.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
    }

    #[test]
    fn ctr_roundtrip() {
        let aes = Aes128::new(&[9; 16]);
        let original: Vec<u8> = (0..100).collect();
        let mut buf = original.clone();
        aes.ctr_apply(&[3; 12], 0, &mut buf);
        assert_ne!(buf, original);
        aes.ctr_apply(&[3; 12], 0, &mut buf);
        assert_eq!(buf, original);
    }

    /// NIST SP 800-38A F.5.1 CTR-AES128 vector.
    #[test]
    fn sp800_38a_ctr_vector() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        // SP 800-38A uses a full 16-byte counter block; ours is nonce||ctr,
        // so build the equivalent: nonce = first 12 bytes, ctr = last 4 BE.
        let nonce: [u8; 12] =
            [0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb];
        let counter = u32::from_be_bytes([0xfc, 0xfd, 0xfe, 0xff]);
        let mut data: [u8; 16] = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        Aes128::new(&key).ctr_apply(&nonce, counter, &mut data);
        assert_eq!(hex(&data), "874d6191b620e3261bef6864990db6ce");
    }

    #[test]
    fn decrypt_inverts_encrypt_for_many_keys() {
        for seed in 0u8..16 {
            let key: [u8; 16] = core::array::from_fn(|i| i as u8 ^ seed.wrapping_mul(37));
            let aes = Aes128::new(&key);
            let original: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(seed + 1));
            let mut block = original;
            aes.encrypt_block(&mut block);
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }
}
