//! ChaCha20 stream cipher (RFC 8439).
//!
//! VeilS-ENC seals swapped-out enclave pages by encrypting them with a
//! per-enclave key and a per-page nonce derived from the freshness counter
//! (§6.2). ChaCha20 was chosen for the simulation because it is compact,
//! fast in pure safe Rust, and has unambiguous published test vectors.

/// ChaCha20 cipher instance bound to one key.
///
/// # Example
///
/// ```
/// use veil_crypto::chacha20::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let cipher = ChaCha20::new(&key);
/// let mut buf = *b"secret enclave page";
/// cipher.apply_keystream(&nonce, 0, &mut buf);
/// assert_ne!(&buf, b"secret enclave page");
/// cipher.apply_keystream(&nonce, 0, &mut buf);
/// assert_eq!(&buf, b"secret enclave page");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key_words: [u32; 8],
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha20 {
    /// Creates a cipher from a 256-bit key.
    pub fn new(key: &[u8; 32]) -> Self {
        let mut key_words = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            key_words[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha20 { key_words }
    }

    /// XORs the keystream for (`nonce`, starting block `counter`) into `data`.
    ///
    /// Applying the same call twice round-trips (encryption == decryption).
    pub fn apply_keystream(&self, nonce: &[u8; 12], counter: u32, data: &mut [u8]) {
        let mut block_counter = counter;
        for chunk in data.chunks_mut(64) {
            let ks = self.block(nonce, block_counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            block_counter = block_counter.wrapping_add(1);
        }
    }

    /// Produces one 64-byte keystream block.
    pub fn block(&self, nonce: &[u8; 12], counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key_words);
        state[12] = counter;
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            state[13 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key);
        let block = cipher.block(&nonce, 1);
        assert_eq!(hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(hex(&block[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key);
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        cipher.apply_keystream(&nonce, 1, &mut data);
        assert_eq!(
            hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
    }

    #[test]
    fn roundtrip_various_lengths() {
        let cipher = ChaCha20::new(&[0x42; 32]);
        for len in [0usize, 1, 63, 64, 65, 128, 4096] {
            let original: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            let mut buf = original.clone();
            cipher.apply_keystream(&[1; 12], 7, &mut buf);
            if len > 0 {
                assert_ne!(buf, original, "len {len} should be scrambled");
            }
            cipher.apply_keystream(&[1; 12], 7, &mut buf);
            assert_eq!(buf, original, "len {len} should round-trip");
        }
    }

    #[test]
    fn distinct_nonces_give_distinct_streams() {
        let cipher = ChaCha20::new(&[5; 32]);
        let a = cipher.block(&[0; 12], 0);
        let b = cipher.block(&[1; 12], 0);
        assert_ne!(a, b);
    }
}
