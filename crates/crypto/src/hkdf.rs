//! HKDF-SHA-256 (RFC 5869).
//!
//! Veil uses HKDF for the VCEK-style attestation key derivation chain
//! (§ DESIGN.md 15): a per-chip root seed is extracted with the TCB version
//! as salt to produce the TCB-versioned VCEK, which is then expanded with the
//! launch measurement to bind the per-VM attestation key to the exact image
//! that booted. Both stages are plain RFC 5869 extract/expand over the
//! existing [`HmacSha256`] primitive, so a verifier that holds the VCEK can
//! re-derive and audit every step offline.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// `HKDF-Extract(salt, ikm)`: concentrates input keying material into a
/// fixed-length pseudorandom key. An empty `salt` is treated as the RFC 5869
/// default (a string of `HashLen` zeros) — callers may simply pass `&[]`.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    let zeros = [0u8; DIGEST_LEN];
    let salt = if salt.is_empty() { &zeros[..] } else { salt };
    HmacSha256::mac(salt, ikm)
}

/// `HKDF-Expand(prk, info, out)`: fills `out` with output keying material
/// derived from the pseudorandom key `prk` and context string `info`.
///
/// # Panics
///
/// Panics if `out.len() > 255 * 32` (the RFC 5869 length limit).
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut filled = 0usize;
    let mut counter = 1u8;
    while filled < out.len() {
        let mut h = HmacSha256::new(prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        let take = (out.len() - filled).min(DIGEST_LEN);
        out[filled..filled + take].copy_from_slice(&block[..take]);
        filled += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// One-shot `HKDF(salt, ikm, info)` producing a 32-byte key — the only output
/// size the Veil derivation chain uses.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; DIGEST_LEN] {
    let prk = extract(salt, ikm);
    let mut out = [0u8; DIGEST_LEN];
    expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    // RFC 5869 Appendix A test vectors (SHA-256 cases).
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(hex(&prk), "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_2_long_inputs() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(hex(&prk), "06a6b88c5853361a06104c9ceb35b45cef760014904671014a193f40c15fc244");
        let mut okm = [0u8; 82];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    #[test]
    fn rfc5869_case_3_empty_salt_and_info() {
        let ikm = [0x0bu8; 22];
        let prk = extract(&[], &ikm);
        assert_eq!(hex(&prk), "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04");
        let mut okm = [0u8; 42];
        expand(&prk, &[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn derive_is_extract_then_expand() {
        let got = derive(b"salt", b"ikm", b"info");
        let prk = extract(b"salt", b"ikm");
        let mut want = [0u8; DIGEST_LEN];
        expand(&prk, b"info", &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn distinct_info_distinct_keys() {
        assert_ne!(derive(b"s", b"k", b"a"), derive(b"s", b"k", b"b"));
    }
}
