//! Cryptographic primitives for the Veil framework.
//!
//! The Veil paper relies on SEV-SNP firmware and guest-side cryptography for
//! launch measurement, remote attestation, secure user channels, sealed
//! enclave paging, and kernel-module signatures. This crate implements every
//! primitive those code paths need, from scratch and dependency-free:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (launch digests, enclave measurements).
//! * [`hmac`] — RFC 2104 HMAC-SHA-256 (report signatures, page integrity).
//! * [`hkdf`] — RFC 5869 HKDF-SHA-256 (VCEK-style attestation key chain).
//! * [`chacha20`] — RFC 8439 ChaCha20 (sealed enclave page encryption).
//! * [`aes`] — FIPS 197 AES-128 plus CTR mode (MbedTLS-style self tests).
//! * [`dh`] — finite-field Diffie–Hellman over a 256-bit prime (secure
//!   channel bootstrap after attestation).
//! * [`drbg`] — a ChaCha20-based deterministic random bit generator.
//! * [`ct`] — constant-time comparison helpers.
//!
//! # Security note
//!
//! These implementations are written for the Veil *simulation*: they are
//! functionally correct (validated against published test vectors) but make
//! no claims about side-channel resistance of the host they run on. The DH
//! group in [`dh`] uses simulation-grade parameters.
//!
//! # Example
//!
//! ```
//! use veil_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"veil");
//! assert_eq!(digest.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod chacha20;
pub mod ct;
pub mod dh;
pub mod drbg;
pub mod hkdf;
pub mod hmac;
pub mod sha256;

pub use aes::Aes128;
pub use chacha20::ChaCha20;
pub use dh::{DhKeyPair, DhPublic, DhSharedSecret};
pub use drbg::Drbg;
pub use hmac::HmacSha256;
pub use sha256::Sha256;
