//! Finite-field Diffie–Hellman over a 256-bit prime field.
//!
//! After SEV remote attestation, the remote user establishes a shared secret
//! with VeilMon (§5.1: "information to establish a Diffie-Hellman shared
//! key" is carried in the attestation digest). This module provides that
//! exchange for the simulation.
//!
//! The group is `Z_p^*` with `p = 2^256 - 189` (the largest 256-bit prime,
//! whose special form makes reduction cheap) and generator `g = 7`. These
//! are simulation-grade parameters: the protocol structure is faithful, but
//! a production deployment would use an RFC 7919 group or X25519.

use crate::hmac::HmacSha256;

/// 256-bit unsigned integer stored as four little-endian u64 limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct U256(pub [u64; 4]);

/// The prime modulus `2^256 - 189`.
pub const P: U256 = U256([u64::MAX - 188, u64::MAX, u64::MAX, u64::MAX]);

/// Reduction constant: `2^256 ≡ 189 (mod p)`.
const FOLD: u64 = 189;

/// The group generator.
pub const G: U256 = U256([7, 0, 0, 0]);

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256([0; 4]);
    /// One.
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Builds a value from 32 big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[(3 - i) * 8..(4 - i) * 8]);
            limbs[i] = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[(3 - i) * 8..(4 - i) * 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    fn add_with_carry(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            let (lo, c1) = a.overflowing_add(*b);
            let (sum, c2) = lo.overflowing_add(carry as u64);
            *o = sum;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    fn sub_with_borrow(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            let (lo, b1) = a.overflowing_sub(*b);
            let (diff, b2) = lo.overflowing_sub(borrow as u64);
            *o = diff;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Modular addition in `Z_p`.
    pub fn add_mod(self, rhs: U256) -> U256 {
        let (sum, carry) = self.add_with_carry(rhs);
        let mut r = sum;
        if carry {
            // sum + 2^256 ≡ sum + FOLD (mod p)
            let (folded, c2) = r.add_with_carry(U256([FOLD, 0, 0, 0]));
            r = folded;
            debug_assert!(!c2);
        }
        if r >= P {
            r = r.sub_with_borrow(P).0;
        }
        r
    }

    /// Modular multiplication in `Z_p` using the special form of `p`.
    pub fn mul_mod(self, rhs: U256) -> U256 {
        // Schoolbook 4x4 limb multiply into 8 limbs.
        let mut wide = [0u128; 8];
        for i in 0..4 {
            for j in 0..4 {
                wide[i + j] += (self.0[i] as u128) * (rhs.0[j] as u128);
                // Normalize eagerly so wide[] never overflows u128: after
                // adding, propagate anything above 64 bits.
                let carry = wide[i + j] >> 64;
                wide[i + j] &= (1u128 << 64) - 1;
                wide[i + j + 1] += carry;
            }
        }
        let lo = U256([wide[0] as u64, wide[1] as u64, wide[2] as u64, wide[3] as u64]);
        let hi = U256([wide[4] as u64, wide[5] as u64, wide[6] as u64, wide[7] as u64]);
        // x = hi*2^256 + lo ≡ hi*FOLD + lo (mod p). hi*FOLD fits in 256+8
        // bits, so one more fold of its (tiny) overflow finishes the job.
        let (hi_folded, overflow) = hi.mul_small(FOLD);
        let mut r = lo.add_mod(hi_folded);
        if overflow > 0 {
            // overflow * 2^256 ≡ overflow * FOLD (mod p); overflow ≤ 188.
            r = r.add_mod(U256([overflow * FOLD, 0, 0, 0]));
        }
        r
    }

    /// Multiplies by a small constant, returning (low 256 bits, overflow limb).
    fn mul_small(self, k: u64) -> (U256, u64) {
        let mut out = [0u64; 4];
        let mut carry = 0u128;
        for (o, limb) in out.iter_mut().zip(self.0.iter()) {
            let v = (*limb as u128) * (k as u128) + carry;
            *o = v as u64;
            carry = v >> 64;
        }
        (U256(out), carry as u64)
    }

    /// Modular exponentiation `self^exp mod p` (square-and-multiply).
    pub fn pow_mod(self, exp: U256) -> U256 {
        let mut result = U256::ONE;
        let mut base = self;
        if base >= P {
            base = base.sub_with_borrow(P).0;
        }
        for limb_idx in 0..4 {
            let limb = exp.0[limb_idx];
            for bit in 0..64 {
                if (limb >> bit) & 1 == 1 {
                    result = result.mul_mod(base);
                }
                base = base.mul_mod(base);
            }
        }
        result
    }
}

/// A DH public value (`g^x mod p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhPublic(pub U256);

/// A DH shared secret, post-processed through HMAC for key derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhSharedSecret(pub [u8; 32]);

/// A DH key pair.
#[derive(Debug, Clone)]
pub struct DhKeyPair {
    secret: U256,
    /// The public value to send to the peer.
    pub public: DhPublic,
}

impl DhKeyPair {
    /// Derives a key pair from 32 bytes of secret entropy.
    ///
    /// The caller supplies entropy (e.g. from [`crate::drbg::Drbg`]); this
    /// keeps the crate deterministic and dependency-free.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let mut secret = U256::from_be_bytes(seed);
        // Clamp away degenerate exponents.
        if secret == U256::ZERO || secret == U256::ONE {
            secret = U256([0x1337, 0, 0, 0]);
        }
        let public = DhPublic(G.pow_mod(secret));
        DhKeyPair { secret, public }
    }

    /// Computes the shared secret with a peer's public value.
    ///
    /// The raw group element is run through HMAC-SHA-256 (keyed with a
    /// domain-separation label) to produce a uniform 32-byte key.
    pub fn agree(&self, peer: &DhPublic) -> DhSharedSecret {
        let raw = peer.0.pow_mod(self.secret);
        DhSharedSecret(HmacSha256::mac(b"veil-dh-kdf-v1", &raw.to_be_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arith_sanity() {
        let a = U256([5, 0, 0, 0]);
        let b = U256([7, 0, 0, 0]);
        assert_eq!(a.mul_mod(b), U256([35, 0, 0, 0]));
        assert_eq!(a.add_mod(b), U256([12, 0, 0, 0]));
    }

    #[test]
    fn add_wraps_at_modulus() {
        let p_minus_1 = P.sub_with_borrow(U256::ONE).0;
        assert_eq!(p_minus_1.add_mod(U256::ONE), U256::ZERO);
        assert_eq!(p_minus_1.add_mod(U256([2, 0, 0, 0])), U256::ONE);
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) ≡ 1 (mod p) for prime p — a strong correctness check for
        // mul_mod/pow_mod over random-ish bases.
        let p_minus_1 = P.sub_with_borrow(U256::ONE).0;
        for base in [2u64, 3, 7, 0xdeadbeef, 0x1234_5678_9abc_def0] {
            let b = U256([base, 1, 2, 3]);
            assert_eq!(b.pow_mod(p_minus_1), U256::ONE, "base {base}");
        }
    }

    #[test]
    fn pow_matches_naive_for_small_exponents() {
        let base = U256([0xabcdef, 0, 0, 0]);
        let mut acc = U256::ONE;
        for e in 0u64..20 {
            assert_eq!(base.pow_mod(U256([e, 0, 0, 0])), acc, "exp {e}");
            acc = acc.mul_mod(base);
        }
    }

    #[test]
    fn dh_agreement() {
        let alice = DhKeyPair::from_seed(&[1; 32]);
        let bob = DhKeyPair::from_seed(&[2; 32]);
        assert_eq!(alice.agree(&bob.public), bob.agree(&alice.public));
        let eve = DhKeyPair::from_seed(&[3; 32]);
        assert_ne!(alice.agree(&bob.public), eve.agree(&alice.public));
    }

    #[test]
    fn byte_roundtrip() {
        let v = U256([1, 2, 3, 4]);
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn mul_mod_commutes_and_associates() {
        let a = U256([u64::MAX, 12345, u64::MAX, 777]);
        let b = U256([42, u64::MAX, 0, u64::MAX]);
        let c = U256([9, 9, 9, 9]);
        assert_eq!(a.mul_mod(b), b.mul_mod(a));
        assert_eq!(a.mul_mod(b).mul_mod(c), a.mul_mod(b.mul_mod(c)));
    }
}
