/root/repo/target/release/deps/veil_hv-7e37260d477d6d70.d: crates/hv/src/lib.rs

/root/repo/target/release/deps/libveil_hv-7e37260d477d6d70.rlib: crates/hv/src/lib.rs

/root/repo/target/release/deps/libveil_hv-7e37260d477d6d70.rmeta: crates/hv/src/lib.rs

crates/hv/src/lib.rs:
