/root/repo/target/release/deps/cache_differential-e2e1e8f7d8f0e269.d: tests/cache_differential.rs

/root/repo/target/release/deps/cache_differential-e2e1e8f7d8f0e269: tests/cache_differential.rs

tests/cache_differential.rs:
