/root/repo/target/release/deps/veil_core-4df30340e2feecb1.d: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs

/root/repo/target/release/deps/libveil_core-4df30340e2feecb1.rlib: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs

/root/repo/target/release/deps/libveil_core-4df30340e2feecb1.rmeta: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs

crates/core/src/lib.rs:
crates/core/src/cvm.rs:
crates/core/src/domain.rs:
crates/core/src/gate.rs:
crates/core/src/idcb.rs:
crates/core/src/layout.rs:
crates/core/src/monitor.rs:
crates/core/src/remote.rs:
crates/core/src/service.rs:
