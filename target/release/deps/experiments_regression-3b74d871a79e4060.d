/root/repo/target/release/deps/experiments_regression-3b74d871a79e4060.d: tests/experiments_regression.rs

/root/repo/target/release/deps/experiments_regression-3b74d871a79e4060: tests/experiments_regression.rs

tests/experiments_regression.rs:
