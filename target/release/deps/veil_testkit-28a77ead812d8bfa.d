/root/repo/target/release/deps/veil_testkit-28a77ead812d8bfa.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs

/root/repo/target/release/deps/libveil_testkit-28a77ead812d8bfa.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs

/root/repo/target/release/deps/libveil_testkit-28a77ead812d8bfa.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/fmt.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
