/root/repo/target/release/deps/security_framework-5da0ab1a398073ba.d: tests/security_framework.rs

/root/repo/target/release/deps/security_framework-5da0ab1a398073ba: tests/security_framework.rs

tests/security_framework.rs:
