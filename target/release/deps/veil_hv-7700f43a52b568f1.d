/root/repo/target/release/deps/veil_hv-7700f43a52b568f1.d: crates/hv/src/lib.rs

/root/repo/target/release/deps/libveil_hv-7700f43a52b568f1.rlib: crates/hv/src/lib.rs

/root/repo/target/release/deps/libveil_hv-7700f43a52b568f1.rmeta: crates/hv/src/lib.rs

crates/hv/src/lib.rs:
