/root/repo/target/release/deps/veil_trace-d14c710ebb650291.d: crates/trace/src/lib.rs crates/trace/src/cache.rs crates/trace/src/event.rs crates/trace/src/invariants_impl.rs crates/trace/src/tracer.rs

/root/repo/target/release/deps/libveil_trace-d14c710ebb650291.rlib: crates/trace/src/lib.rs crates/trace/src/cache.rs crates/trace/src/event.rs crates/trace/src/invariants_impl.rs crates/trace/src/tracer.rs

/root/repo/target/release/deps/libveil_trace-d14c710ebb650291.rmeta: crates/trace/src/lib.rs crates/trace/src/cache.rs crates/trace/src/event.rs crates/trace/src/invariants_impl.rs crates/trace/src/tracer.rs

crates/trace/src/lib.rs:
crates/trace/src/cache.rs:
crates/trace/src/event.rs:
crates/trace/src/invariants_impl.rs:
crates/trace/src/tracer.rs:
