/root/repo/target/release/deps/veil_crypto-e4e28a8b1182936b.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/dh.rs crates/crypto/src/drbg.rs crates/crypto/src/hmac.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/libveil_crypto-e4e28a8b1182936b.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/dh.rs crates/crypto/src/drbg.rs crates/crypto/src/hmac.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/libveil_crypto-e4e28a8b1182936b.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/dh.rs crates/crypto/src/drbg.rs crates/crypto/src/hmac.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/dh.rs:
crates/crypto/src/drbg.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/sha256.rs:
