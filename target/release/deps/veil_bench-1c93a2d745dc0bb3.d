/root/repo/target/release/deps/veil_bench-1c93a2d745dc0bb3.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/release/deps/libveil_bench-1c93a2d745dc0bb3.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/release/deps/libveil_bench-1c93a2d745dc0bb3.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
