/root/repo/target/release/deps/domain_switch-df0c9d75b60667a6.d: crates/bench/benches/domain_switch.rs

/root/repo/target/release/deps/domain_switch-df0c9d75b60667a6: crates/bench/benches/domain_switch.rs

crates/bench/benches/domain_switch.rs:
