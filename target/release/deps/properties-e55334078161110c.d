/root/repo/target/release/deps/properties-e55334078161110c.d: tests/properties.rs

/root/repo/target/release/deps/properties-e55334078161110c: tests/properties.rs

tests/properties.rs:
