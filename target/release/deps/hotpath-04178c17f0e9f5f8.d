/root/repo/target/release/deps/hotpath-04178c17f0e9f5f8.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/release/deps/hotpath-04178c17f0e9f5f8: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
