/root/repo/target/release/deps/end_to_end-0e1c9cebb687548b.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-0e1c9cebb687548b: tests/end_to_end.rs

tests/end_to_end.rs:
