/root/repo/target/release/deps/domain_switch-94e9cfa100e88449.d: crates/bench/benches/domain_switch.rs

/root/repo/target/release/deps/domain_switch-94e9cfa100e88449: crates/bench/benches/domain_switch.rs

crates/bench/benches/domain_switch.rs:
