/root/repo/target/release/deps/ltp_suite-cdfb9bca28c1c342.d: tests/ltp_suite.rs

/root/repo/target/release/deps/ltp_suite-cdfb9bca28c1c342: tests/ltp_suite.rs

tests/ltp_suite.rs:
