/root/repo/target/release/deps/hermeticity-65d135ed1c261293.d: tests/hermeticity.rs

/root/repo/target/release/deps/hermeticity-65d135ed1c261293: tests/hermeticity.rs

tests/hermeticity.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
