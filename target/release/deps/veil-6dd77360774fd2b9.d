/root/repo/target/release/deps/veil-6dd77360774fd2b9.d: src/lib.rs

/root/repo/target/release/deps/libveil-6dd77360774fd2b9.rlib: src/lib.rs

/root/repo/target/release/deps/libveil-6dd77360774fd2b9.rmeta: src/lib.rs

src/lib.rs:
