/root/repo/target/release/deps/boot_time-cb1c45124bfaf187.d: crates/bench/benches/boot_time.rs

/root/repo/target/release/deps/boot_time-cb1c45124bfaf187: crates/bench/benches/boot_time.rs

crates/bench/benches/boot_time.rs:
