/root/repo/target/release/deps/trace_invariants-f4f608cac49d022f.d: tests/trace_invariants.rs

/root/repo/target/release/deps/trace_invariants-f4f608cac49d022f: tests/trace_invariants.rs

tests/trace_invariants.rs:
