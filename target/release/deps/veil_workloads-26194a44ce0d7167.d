/root/repo/target/release/deps/veil_workloads-26194a44ce0d7167.d: crates/workloads/src/lib.rs crates/workloads/src/compress.rs crates/workloads/src/driver.rs crates/workloads/src/http.rs crates/workloads/src/kvstore.rs crates/workloads/src/mbedtls.rs crates/workloads/src/memcached.rs crates/workloads/src/minidb.rs crates/workloads/src/openssl.rs crates/workloads/src/spec_cpu.rs

/root/repo/target/release/deps/libveil_workloads-26194a44ce0d7167.rlib: crates/workloads/src/lib.rs crates/workloads/src/compress.rs crates/workloads/src/driver.rs crates/workloads/src/http.rs crates/workloads/src/kvstore.rs crates/workloads/src/mbedtls.rs crates/workloads/src/memcached.rs crates/workloads/src/minidb.rs crates/workloads/src/openssl.rs crates/workloads/src/spec_cpu.rs

/root/repo/target/release/deps/libveil_workloads-26194a44ce0d7167.rmeta: crates/workloads/src/lib.rs crates/workloads/src/compress.rs crates/workloads/src/driver.rs crates/workloads/src/http.rs crates/workloads/src/kvstore.rs crates/workloads/src/mbedtls.rs crates/workloads/src/memcached.rs crates/workloads/src/minidb.rs crates/workloads/src/openssl.rs crates/workloads/src/spec_cpu.rs

crates/workloads/src/lib.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/http.rs:
crates/workloads/src/kvstore.rs:
crates/workloads/src/mbedtls.rs:
crates/workloads/src/memcached.rs:
crates/workloads/src/minidb.rs:
crates/workloads/src/openssl.rs:
crates/workloads/src/spec_cpu.rs:
