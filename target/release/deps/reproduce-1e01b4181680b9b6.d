/root/repo/target/release/deps/reproduce-1e01b4181680b9b6.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-1e01b4181680b9b6: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
