/root/repo/target/release/deps/veil-f764bdc276bbb8f5.d: src/lib.rs

/root/repo/target/release/deps/libveil-f764bdc276bbb8f5.rlib: src/lib.rs

/root/repo/target/release/deps/libveil-f764bdc276bbb8f5.rmeta: src/lib.rs

src/lib.rs:
