/root/repo/target/release/deps/veil_snp-a37e7c9baea8f24f.d: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/tlb.rs crates/snp/src/vmsa.rs

/root/repo/target/release/deps/libveil_snp-a37e7c9baea8f24f.rlib: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/tlb.rs crates/snp/src/vmsa.rs

/root/repo/target/release/deps/libveil_snp-a37e7c9baea8f24f.rmeta: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/tlb.rs crates/snp/src/vmsa.rs

crates/snp/src/lib.rs:
crates/snp/src/attest.rs:
crates/snp/src/cost.rs:
crates/snp/src/fault.rs:
crates/snp/src/ghcb.rs:
crates/snp/src/machine.rs:
crates/snp/src/mem.rs:
crates/snp/src/perms.rs:
crates/snp/src/pt.rs:
crates/snp/src/rmp.rs:
crates/snp/src/tlb.rs:
crates/snp/src/vmsa.rs:
