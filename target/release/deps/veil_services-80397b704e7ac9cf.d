/root/repo/target/release/deps/veil_services-80397b704e7ac9cf.d: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/release/deps/libveil_services-80397b704e7ac9cf.rlib: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/release/deps/libveil_services-80397b704e7ac9cf.rmeta: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

crates/services/src/lib.rs:
crates/services/src/enc.rs:
crates/services/src/kci.rs:
crates/services/src/log.rs:
