/root/repo/target/release/deps/ablations-5424067b42492de2.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-5424067b42492de2: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
