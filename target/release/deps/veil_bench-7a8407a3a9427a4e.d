/root/repo/target/release/deps/veil_bench-7a8407a3a9427a4e.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/release/deps/libveil_bench-7a8407a3a9427a4e.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/release/deps/libveil_bench-7a8407a3a9427a4e.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
