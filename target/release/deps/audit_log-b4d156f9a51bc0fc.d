/root/repo/target/release/deps/audit_log-b4d156f9a51bc0fc.d: crates/bench/benches/audit_log.rs

/root/repo/target/release/deps/audit_log-b4d156f9a51bc0fc: crates/bench/benches/audit_log.rs

crates/bench/benches/audit_log.rs:
