/root/repo/target/release/deps/enclave_apps-7c1b49ae0da25030.d: crates/bench/benches/enclave_apps.rs

/root/repo/target/release/deps/enclave_apps-7c1b49ae0da25030: crates/bench/benches/enclave_apps.rs

crates/bench/benches/enclave_apps.rs:
