/root/repo/target/release/deps/veil-b41a664025ed5e04.d: src/lib.rs

/root/repo/target/release/deps/veil-b41a664025ed5e04: src/lib.rs

src/lib.rs:
