/root/repo/target/release/deps/veil_services-34e5d86ca0025146.d: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/release/deps/libveil_services-34e5d86ca0025146.rlib: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/release/deps/libveil_services-34e5d86ca0025146.rmeta: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

crates/services/src/lib.rs:
crates/services/src/enc.rs:
crates/services/src/kci.rs:
crates/services/src/log.rs:
