/root/repo/target/release/deps/background-618c5f1730a76e67.d: crates/bench/benches/background.rs

/root/repo/target/release/deps/background-618c5f1730a76e67: crates/bench/benches/background.rs

crates/bench/benches/background.rs:
