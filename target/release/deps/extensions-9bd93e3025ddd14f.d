/root/repo/target/release/deps/extensions-9bd93e3025ddd14f.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-9bd93e3025ddd14f: tests/extensions.rs

tests/extensions.rs:
