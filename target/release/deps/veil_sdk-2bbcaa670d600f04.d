/root/repo/target/release/deps/veil_sdk-2bbcaa670d600f04.d: crates/sdk/src/lib.rs crates/sdk/src/batch.rs crates/sdk/src/binary.rs crates/sdk/src/heap.rs crates/sdk/src/install.rs crates/sdk/src/ltp.rs crates/sdk/src/runtime.rs crates/sdk/src/spec.rs

/root/repo/target/release/deps/libveil_sdk-2bbcaa670d600f04.rlib: crates/sdk/src/lib.rs crates/sdk/src/batch.rs crates/sdk/src/binary.rs crates/sdk/src/heap.rs crates/sdk/src/install.rs crates/sdk/src/ltp.rs crates/sdk/src/runtime.rs crates/sdk/src/spec.rs

/root/repo/target/release/deps/libveil_sdk-2bbcaa670d600f04.rmeta: crates/sdk/src/lib.rs crates/sdk/src/batch.rs crates/sdk/src/binary.rs crates/sdk/src/heap.rs crates/sdk/src/install.rs crates/sdk/src/ltp.rs crates/sdk/src/runtime.rs crates/sdk/src/spec.rs

crates/sdk/src/lib.rs:
crates/sdk/src/batch.rs:
crates/sdk/src/binary.rs:
crates/sdk/src/heap.rs:
crates/sdk/src/install.rs:
crates/sdk/src/ltp.rs:
crates/sdk/src/runtime.rs:
crates/sdk/src/spec.rs:
