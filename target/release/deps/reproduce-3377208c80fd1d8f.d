/root/repo/target/release/deps/reproduce-3377208c80fd1d8f.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-3377208c80fd1d8f: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
