/root/repo/target/release/deps/security_enclave-361d997b8f30ac47.d: tests/security_enclave.rs

/root/repo/target/release/deps/security_enclave-361d997b8f30ac47: tests/security_enclave.rs

tests/security_enclave.rs:
