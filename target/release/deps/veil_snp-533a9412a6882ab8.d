/root/repo/target/release/deps/veil_snp-533a9412a6882ab8.d: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/vmsa.rs

/root/repo/target/release/deps/libveil_snp-533a9412a6882ab8.rlib: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/vmsa.rs

/root/repo/target/release/deps/libveil_snp-533a9412a6882ab8.rmeta: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/vmsa.rs

crates/snp/src/lib.rs:
crates/snp/src/attest.rs:
crates/snp/src/cost.rs:
crates/snp/src/fault.rs:
crates/snp/src/ghcb.rs:
crates/snp/src/machine.rs:
crates/snp/src/mem.rs:
crates/snp/src/perms.rs:
crates/snp/src/pt.rs:
crates/snp/src/rmp.rs:
crates/snp/src/vmsa.rs:
