/root/repo/target/release/deps/veil_os-cddb0ed5781616a6.d: crates/os/src/lib.rs crates/os/src/audit.rs crates/os/src/error.rs crates/os/src/frames.rs crates/os/src/kernel.rs crates/os/src/module.rs crates/os/src/monitor.rs crates/os/src/process.rs crates/os/src/socket.rs crates/os/src/sys.rs crates/os/src/syscall.rs crates/os/src/vfs.rs

/root/repo/target/release/deps/libveil_os-cddb0ed5781616a6.rlib: crates/os/src/lib.rs crates/os/src/audit.rs crates/os/src/error.rs crates/os/src/frames.rs crates/os/src/kernel.rs crates/os/src/module.rs crates/os/src/monitor.rs crates/os/src/process.rs crates/os/src/socket.rs crates/os/src/sys.rs crates/os/src/syscall.rs crates/os/src/vfs.rs

/root/repo/target/release/deps/libveil_os-cddb0ed5781616a6.rmeta: crates/os/src/lib.rs crates/os/src/audit.rs crates/os/src/error.rs crates/os/src/frames.rs crates/os/src/kernel.rs crates/os/src/module.rs crates/os/src/monitor.rs crates/os/src/process.rs crates/os/src/socket.rs crates/os/src/sys.rs crates/os/src/syscall.rs crates/os/src/vfs.rs

crates/os/src/lib.rs:
crates/os/src/audit.rs:
crates/os/src/error.rs:
crates/os/src/frames.rs:
crates/os/src/kernel.rs:
crates/os/src/module.rs:
crates/os/src/monitor.rs:
crates/os/src/process.rs:
crates/os/src/socket.rs:
crates/os/src/sys.rs:
crates/os/src/syscall.rs:
crates/os/src/vfs.rs:
