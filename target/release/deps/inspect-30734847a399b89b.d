/root/repo/target/release/deps/inspect-30734847a399b89b.d: crates/bench/src/bin/inspect.rs

/root/repo/target/release/deps/inspect-30734847a399b89b: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
