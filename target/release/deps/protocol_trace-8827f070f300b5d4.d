/root/repo/target/release/deps/protocol_trace-8827f070f300b5d4.d: tests/protocol_trace.rs

/root/repo/target/release/deps/protocol_trace-8827f070f300b5d4: tests/protocol_trace.rs

tests/protocol_trace.rs:
