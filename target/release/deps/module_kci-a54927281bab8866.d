/root/repo/target/release/deps/module_kci-a54927281bab8866.d: crates/bench/benches/module_kci.rs

/root/repo/target/release/deps/module_kci-a54927281bab8866: crates/bench/benches/module_kci.rs

crates/bench/benches/module_kci.rs:
