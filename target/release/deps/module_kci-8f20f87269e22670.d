/root/repo/target/release/deps/module_kci-8f20f87269e22670.d: crates/bench/benches/module_kci.rs

/root/repo/target/release/deps/module_kci-8f20f87269e22670: crates/bench/benches/module_kci.rs

crates/bench/benches/module_kci.rs:
