/root/repo/target/release/deps/stale_tlb-1f98611cd2009ce6.d: tests/stale_tlb.rs

/root/repo/target/release/deps/stale_tlb-1f98611cd2009ce6: tests/stale_tlb.rs

tests/stale_tlb.rs:
