/root/repo/target/release/deps/domain_switch-8dfc10ff0a0ab3a8.d: crates/bench/benches/domain_switch.rs

/root/repo/target/release/deps/domain_switch-8dfc10ff0a0ab3a8: crates/bench/benches/domain_switch.rs

crates/bench/benches/domain_switch.rs:
