/root/repo/target/release/deps/veil_testkit-b13224c9fd042df6.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/trace.rs

/root/repo/target/release/deps/libveil_testkit-b13224c9fd042df6.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/trace.rs

/root/repo/target/release/deps/libveil_testkit-b13224c9fd042df6.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/trace.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/fmt.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/trace.rs:
