/root/repo/target/release/deps/inspect-24b67cbfc1c7efbc.d: crates/bench/src/bin/inspect.rs

/root/repo/target/release/deps/inspect-24b67cbfc1c7efbc: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
