/root/repo/target/release/deps/security_validation-2f32ec67078c201e.d: tests/security_validation.rs

/root/repo/target/release/deps/security_validation-2f32ec67078c201e: tests/security_validation.rs

tests/security_validation.rs:
