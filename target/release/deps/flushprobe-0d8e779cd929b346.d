/root/repo/target/release/deps/flushprobe-0d8e779cd929b346.d: crates/bench/src/bin/flushprobe.rs

/root/repo/target/release/deps/flushprobe-0d8e779cd929b346: crates/bench/src/bin/flushprobe.rs

crates/bench/src/bin/flushprobe.rs:
