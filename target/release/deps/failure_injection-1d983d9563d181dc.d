/root/repo/target/release/deps/failure_injection-1d983d9563d181dc.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-1d983d9563d181dc: tests/failure_injection.rs

tests/failure_injection.rs:
