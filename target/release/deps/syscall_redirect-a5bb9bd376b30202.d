/root/repo/target/release/deps/syscall_redirect-a5bb9bd376b30202.d: crates/bench/benches/syscall_redirect.rs

/root/repo/target/release/deps/syscall_redirect-a5bb9bd376b30202: crates/bench/benches/syscall_redirect.rs

crates/bench/benches/syscall_redirect.rs:
