/root/repo/target/release/examples/shielded_database-b3bb43a0f17d7f49.d: examples/shielded_database.rs

/root/repo/target/release/examples/shielded_database-b3bb43a0f17d7f49: examples/shielded_database.rs

examples/shielded_database.rs:
