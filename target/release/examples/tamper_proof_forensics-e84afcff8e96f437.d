/root/repo/target/release/examples/tamper_proof_forensics-e84afcff8e96f437.d: examples/tamper_proof_forensics.rs

/root/repo/target/release/examples/tamper_proof_forensics-e84afcff8e96f437: examples/tamper_proof_forensics.rs

examples/tamper_proof_forensics.rs:
