/root/repo/target/release/examples/quickstart-01012ed6e8685748.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-01012ed6e8685748: examples/quickstart.rs

examples/quickstart.rs:
