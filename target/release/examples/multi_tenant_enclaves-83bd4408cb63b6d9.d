/root/repo/target/release/examples/multi_tenant_enclaves-83bd4408cb63b6d9.d: examples/multi_tenant_enclaves.rs

/root/repo/target/release/examples/multi_tenant_enclaves-83bd4408cb63b6d9: examples/multi_tenant_enclaves.rs

examples/multi_tenant_enclaves.rs:
