/root/repo/target/release/examples/kernel_hardening-0dae9578b48d2471.d: examples/kernel_hardening.rs

/root/repo/target/release/examples/kernel_hardening-0dae9578b48d2471: examples/kernel_hardening.rs

examples/kernel_hardening.rs:
