/root/repo/target/debug/examples/quickstart-04d03893bbfbc412.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-04d03893bbfbc412: examples/quickstart.rs

examples/quickstart.rs:
