/root/repo/target/debug/examples/multi_tenant_enclaves-63a2cb8c5c11eb0e.d: examples/multi_tenant_enclaves.rs

/root/repo/target/debug/examples/multi_tenant_enclaves-63a2cb8c5c11eb0e: examples/multi_tenant_enclaves.rs

examples/multi_tenant_enclaves.rs:
