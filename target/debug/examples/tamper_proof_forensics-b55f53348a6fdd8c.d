/root/repo/target/debug/examples/tamper_proof_forensics-b55f53348a6fdd8c.d: examples/tamper_proof_forensics.rs

/root/repo/target/debug/examples/tamper_proof_forensics-b55f53348a6fdd8c: examples/tamper_proof_forensics.rs

examples/tamper_proof_forensics.rs:
