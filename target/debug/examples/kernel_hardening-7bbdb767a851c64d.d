/root/repo/target/debug/examples/kernel_hardening-7bbdb767a851c64d.d: examples/kernel_hardening.rs

/root/repo/target/debug/examples/kernel_hardening-7bbdb767a851c64d: examples/kernel_hardening.rs

examples/kernel_hardening.rs:
