/root/repo/target/debug/examples/tamper_proof_forensics-716cdba46dbd1ff5.d: examples/tamper_proof_forensics.rs

/root/repo/target/debug/examples/tamper_proof_forensics-716cdba46dbd1ff5: examples/tamper_proof_forensics.rs

examples/tamper_proof_forensics.rs:
