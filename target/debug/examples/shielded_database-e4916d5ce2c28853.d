/root/repo/target/debug/examples/shielded_database-e4916d5ce2c28853.d: examples/shielded_database.rs

/root/repo/target/debug/examples/shielded_database-e4916d5ce2c28853: examples/shielded_database.rs

examples/shielded_database.rs:
