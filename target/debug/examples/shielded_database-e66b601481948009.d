/root/repo/target/debug/examples/shielded_database-e66b601481948009.d: examples/shielded_database.rs

/root/repo/target/debug/examples/shielded_database-e66b601481948009: examples/shielded_database.rs

examples/shielded_database.rs:
