/root/repo/target/debug/examples/quickstart-834627dfea489f01.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-834627dfea489f01: examples/quickstart.rs

examples/quickstart.rs:
