/root/repo/target/debug/examples/tamper_proof_forensics-97ca4a17d7400b5f.d: examples/tamper_proof_forensics.rs Cargo.toml

/root/repo/target/debug/examples/libtamper_proof_forensics-97ca4a17d7400b5f.rmeta: examples/tamper_proof_forensics.rs Cargo.toml

examples/tamper_proof_forensics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
