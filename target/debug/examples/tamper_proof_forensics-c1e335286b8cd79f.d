/root/repo/target/debug/examples/tamper_proof_forensics-c1e335286b8cd79f.d: examples/tamper_proof_forensics.rs

/root/repo/target/debug/examples/tamper_proof_forensics-c1e335286b8cd79f: examples/tamper_proof_forensics.rs

examples/tamper_proof_forensics.rs:
