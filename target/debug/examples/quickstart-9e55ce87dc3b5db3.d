/root/repo/target/debug/examples/quickstart-9e55ce87dc3b5db3.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-9e55ce87dc3b5db3.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
