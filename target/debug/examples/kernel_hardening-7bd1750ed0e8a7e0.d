/root/repo/target/debug/examples/kernel_hardening-7bd1750ed0e8a7e0.d: examples/kernel_hardening.rs

/root/repo/target/debug/examples/kernel_hardening-7bd1750ed0e8a7e0: examples/kernel_hardening.rs

examples/kernel_hardening.rs:
