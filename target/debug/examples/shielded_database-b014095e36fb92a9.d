/root/repo/target/debug/examples/shielded_database-b014095e36fb92a9.d: examples/shielded_database.rs

/root/repo/target/debug/examples/shielded_database-b014095e36fb92a9: examples/shielded_database.rs

examples/shielded_database.rs:
