/root/repo/target/debug/examples/kernel_hardening-3513fe3611f69cca.d: examples/kernel_hardening.rs

/root/repo/target/debug/examples/kernel_hardening-3513fe3611f69cca: examples/kernel_hardening.rs

examples/kernel_hardening.rs:
