/root/repo/target/debug/examples/kernel_hardening-d65c3449eaeabf2c.d: examples/kernel_hardening.rs Cargo.toml

/root/repo/target/debug/examples/libkernel_hardening-d65c3449eaeabf2c.rmeta: examples/kernel_hardening.rs Cargo.toml

examples/kernel_hardening.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
