/root/repo/target/debug/examples/multi_tenant_enclaves-6045aee66dbddcdf.d: examples/multi_tenant_enclaves.rs

/root/repo/target/debug/examples/multi_tenant_enclaves-6045aee66dbddcdf: examples/multi_tenant_enclaves.rs

examples/multi_tenant_enclaves.rs:
