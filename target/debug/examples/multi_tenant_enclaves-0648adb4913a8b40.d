/root/repo/target/debug/examples/multi_tenant_enclaves-0648adb4913a8b40.d: examples/multi_tenant_enclaves.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_tenant_enclaves-0648adb4913a8b40.rmeta: examples/multi_tenant_enclaves.rs Cargo.toml

examples/multi_tenant_enclaves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
