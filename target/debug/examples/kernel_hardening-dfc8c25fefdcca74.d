/root/repo/target/debug/examples/kernel_hardening-dfc8c25fefdcca74.d: examples/kernel_hardening.rs Cargo.toml

/root/repo/target/debug/examples/libkernel_hardening-dfc8c25fefdcca74.rmeta: examples/kernel_hardening.rs Cargo.toml

examples/kernel_hardening.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
