/root/repo/target/debug/examples/quickstart-631463e9dab0a29a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-631463e9dab0a29a: examples/quickstart.rs

examples/quickstart.rs:
