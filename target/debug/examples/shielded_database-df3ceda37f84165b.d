/root/repo/target/debug/examples/shielded_database-df3ceda37f84165b.d: examples/shielded_database.rs Cargo.toml

/root/repo/target/debug/examples/libshielded_database-df3ceda37f84165b.rmeta: examples/shielded_database.rs Cargo.toml

examples/shielded_database.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
