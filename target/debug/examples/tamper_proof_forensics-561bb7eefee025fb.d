/root/repo/target/debug/examples/tamper_proof_forensics-561bb7eefee025fb.d: examples/tamper_proof_forensics.rs Cargo.toml

/root/repo/target/debug/examples/libtamper_proof_forensics-561bb7eefee025fb.rmeta: examples/tamper_proof_forensics.rs Cargo.toml

examples/tamper_proof_forensics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
