/root/repo/target/debug/examples/multi_tenant_enclaves-2e17d73303e373dd.d: examples/multi_tenant_enclaves.rs

/root/repo/target/debug/examples/multi_tenant_enclaves-2e17d73303e373dd: examples/multi_tenant_enclaves.rs

examples/multi_tenant_enclaves.rs:
