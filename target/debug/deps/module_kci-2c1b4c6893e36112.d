/root/repo/target/debug/deps/module_kci-2c1b4c6893e36112.d: crates/bench/benches/module_kci.rs Cargo.toml

/root/repo/target/debug/deps/libmodule_kci-2c1b4c6893e36112.rmeta: crates/bench/benches/module_kci.rs Cargo.toml

crates/bench/benches/module_kci.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
