/root/repo/target/debug/deps/security_framework-e27b691b8d797e11.d: tests/security_framework.rs

/root/repo/target/debug/deps/security_framework-e27b691b8d797e11: tests/security_framework.rs

tests/security_framework.rs:
