/root/repo/target/debug/deps/veil_services-5d7383bfabdf4095.d: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/debug/deps/veil_services-5d7383bfabdf4095: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

crates/services/src/lib.rs:
crates/services/src/enc.rs:
crates/services/src/kci.rs:
crates/services/src/log.rs:
