/root/repo/target/debug/deps/veil_bench-e7efbc2379626916.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs Cargo.toml

/root/repo/target/debug/deps/libveil_bench-e7efbc2379626916.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
