/root/repo/target/debug/deps/veil_trace-e67e4e90722d2806.d: crates/trace/src/lib.rs crates/trace/src/cache.rs crates/trace/src/event.rs crates/trace/src/invariants_impl.rs crates/trace/src/tracer.rs Cargo.toml

/root/repo/target/debug/deps/libveil_trace-e67e4e90722d2806.rmeta: crates/trace/src/lib.rs crates/trace/src/cache.rs crates/trace/src/event.rs crates/trace/src/invariants_impl.rs crates/trace/src/tracer.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/cache.rs:
crates/trace/src/event.rs:
crates/trace/src/invariants_impl.rs:
crates/trace/src/tracer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
