/root/repo/target/debug/deps/veil_hv-b4ee271036c535ce.d: crates/hv/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libveil_hv-b4ee271036c535ce.rmeta: crates/hv/src/lib.rs Cargo.toml

crates/hv/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
