/root/repo/target/debug/deps/reproduce-dd66c4d6c49c92f6.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-dd66c4d6c49c92f6: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
