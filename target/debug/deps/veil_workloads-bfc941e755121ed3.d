/root/repo/target/debug/deps/veil_workloads-bfc941e755121ed3.d: crates/workloads/src/lib.rs crates/workloads/src/compress.rs crates/workloads/src/driver.rs crates/workloads/src/http.rs crates/workloads/src/kvstore.rs crates/workloads/src/mbedtls.rs crates/workloads/src/memcached.rs crates/workloads/src/minidb.rs crates/workloads/src/openssl.rs crates/workloads/src/spec_cpu.rs Cargo.toml

/root/repo/target/debug/deps/libveil_workloads-bfc941e755121ed3.rmeta: crates/workloads/src/lib.rs crates/workloads/src/compress.rs crates/workloads/src/driver.rs crates/workloads/src/http.rs crates/workloads/src/kvstore.rs crates/workloads/src/mbedtls.rs crates/workloads/src/memcached.rs crates/workloads/src/minidb.rs crates/workloads/src/openssl.rs crates/workloads/src/spec_cpu.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/http.rs:
crates/workloads/src/kvstore.rs:
crates/workloads/src/mbedtls.rs:
crates/workloads/src/memcached.rs:
crates/workloads/src/minidb.rs:
crates/workloads/src/openssl.rs:
crates/workloads/src/spec_cpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
