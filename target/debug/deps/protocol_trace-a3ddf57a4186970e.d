/root/repo/target/debug/deps/protocol_trace-a3ddf57a4186970e.d: tests/protocol_trace.rs

/root/repo/target/debug/deps/protocol_trace-a3ddf57a4186970e: tests/protocol_trace.rs

tests/protocol_trace.rs:
