/root/repo/target/debug/deps/veil_crypto-38f8b1b8a185e483.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/dh.rs crates/crypto/src/drbg.rs crates/crypto/src/hmac.rs crates/crypto/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libveil_crypto-38f8b1b8a185e483.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/dh.rs crates/crypto/src/drbg.rs crates/crypto/src/hmac.rs crates/crypto/src/sha256.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/dh.rs:
crates/crypto/src/drbg.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
