/root/repo/target/debug/deps/hermeticity-d5e1b88ab121b35a.d: tests/hermeticity.rs

/root/repo/target/debug/deps/hermeticity-d5e1b88ab121b35a: tests/hermeticity.rs

tests/hermeticity.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
