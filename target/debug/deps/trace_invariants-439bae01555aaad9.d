/root/repo/target/debug/deps/trace_invariants-439bae01555aaad9.d: tests/trace_invariants.rs

/root/repo/target/debug/deps/trace_invariants-439bae01555aaad9: tests/trace_invariants.rs

tests/trace_invariants.rs:
