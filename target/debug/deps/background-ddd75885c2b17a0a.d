/root/repo/target/debug/deps/background-ddd75885c2b17a0a.d: crates/bench/benches/background.rs Cargo.toml

/root/repo/target/debug/deps/libbackground-ddd75885c2b17a0a.rmeta: crates/bench/benches/background.rs Cargo.toml

crates/bench/benches/background.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
