/root/repo/target/debug/deps/veil-27bf8081ca438bc2.d: src/lib.rs

/root/repo/target/debug/deps/libveil-27bf8081ca438bc2.rlib: src/lib.rs

/root/repo/target/debug/deps/libveil-27bf8081ca438bc2.rmeta: src/lib.rs

src/lib.rs:
