/root/repo/target/debug/deps/security_framework-35a6fd4695a347c1.d: tests/security_framework.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity_framework-35a6fd4695a347c1.rmeta: tests/security_framework.rs Cargo.toml

tests/security_framework.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
