/root/repo/target/debug/deps/inspect-a88a91f7bc449c1d.d: crates/bench/src/bin/inspect.rs

/root/repo/target/debug/deps/inspect-a88a91f7bc449c1d: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
