/root/repo/target/debug/deps/ablations-5ccacc28d3d4b25e.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-5ccacc28d3d4b25e.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
