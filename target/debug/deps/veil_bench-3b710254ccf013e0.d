/root/repo/target/debug/deps/veil_bench-3b710254ccf013e0.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/veil_bench-3b710254ccf013e0: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
