/root/repo/target/debug/deps/security_enclave-9902d98bc7e7ccfe.d: tests/security_enclave.rs

/root/repo/target/debug/deps/security_enclave-9902d98bc7e7ccfe: tests/security_enclave.rs

tests/security_enclave.rs:
