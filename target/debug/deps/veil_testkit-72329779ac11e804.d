/root/repo/target/debug/deps/veil_testkit-72329779ac11e804.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs

/root/repo/target/debug/deps/libveil_testkit-72329779ac11e804.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs

/root/repo/target/debug/deps/libveil_testkit-72329779ac11e804.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/fmt.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
