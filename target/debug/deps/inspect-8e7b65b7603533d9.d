/root/repo/target/debug/deps/inspect-8e7b65b7603533d9.d: crates/bench/src/bin/inspect.rs

/root/repo/target/debug/deps/inspect-8e7b65b7603533d9: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
