/root/repo/target/debug/deps/veil_core-e7dc7701aef86358.d: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs

/root/repo/target/debug/deps/libveil_core-e7dc7701aef86358.rlib: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs

/root/repo/target/debug/deps/libveil_core-e7dc7701aef86358.rmeta: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs

crates/core/src/lib.rs:
crates/core/src/cvm.rs:
crates/core/src/domain.rs:
crates/core/src/gate.rs:
crates/core/src/idcb.rs:
crates/core/src/layout.rs:
crates/core/src/monitor.rs:
crates/core/src/remote.rs:
crates/core/src/service.rs:
