/root/repo/target/debug/deps/veil-4df9de3e9f7b673b.d: src/lib.rs

/root/repo/target/debug/deps/libveil-4df9de3e9f7b673b.rlib: src/lib.rs

/root/repo/target/debug/deps/libveil-4df9de3e9f7b673b.rmeta: src/lib.rs

src/lib.rs:
