/root/repo/target/debug/deps/hermeticity-45077bf6641f1d4b.d: tests/hermeticity.rs Cargo.toml

/root/repo/target/debug/deps/libhermeticity-45077bf6641f1d4b.rmeta: tests/hermeticity.rs Cargo.toml

tests/hermeticity.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
