/root/repo/target/debug/deps/security_validation-a03cf8502c8dade1.d: tests/security_validation.rs

/root/repo/target/debug/deps/security_validation-a03cf8502c8dade1: tests/security_validation.rs

tests/security_validation.rs:
