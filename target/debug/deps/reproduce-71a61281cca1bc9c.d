/root/repo/target/debug/deps/reproduce-71a61281cca1bc9c.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-71a61281cca1bc9c: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
