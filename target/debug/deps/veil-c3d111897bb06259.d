/root/repo/target/debug/deps/veil-c3d111897bb06259.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libveil-c3d111897bb06259.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
