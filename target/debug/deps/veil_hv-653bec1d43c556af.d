/root/repo/target/debug/deps/veil_hv-653bec1d43c556af.d: crates/hv/src/lib.rs

/root/repo/target/debug/deps/veil_hv-653bec1d43c556af: crates/hv/src/lib.rs

crates/hv/src/lib.rs:
