/root/repo/target/debug/deps/enclave_apps-bdd9e080fcf806f2.d: crates/bench/benches/enclave_apps.rs Cargo.toml

/root/repo/target/debug/deps/libenclave_apps-bdd9e080fcf806f2.rmeta: crates/bench/benches/enclave_apps.rs Cargo.toml

crates/bench/benches/enclave_apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
