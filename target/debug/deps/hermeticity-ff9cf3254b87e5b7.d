/root/repo/target/debug/deps/hermeticity-ff9cf3254b87e5b7.d: tests/hermeticity.rs Cargo.toml

/root/repo/target/debug/deps/libhermeticity-ff9cf3254b87e5b7.rmeta: tests/hermeticity.rs Cargo.toml

tests/hermeticity.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
