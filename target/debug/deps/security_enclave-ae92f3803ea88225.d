/root/repo/target/debug/deps/security_enclave-ae92f3803ea88225.d: tests/security_enclave.rs

/root/repo/target/debug/deps/security_enclave-ae92f3803ea88225: tests/security_enclave.rs

tests/security_enclave.rs:
