/root/repo/target/debug/deps/veil_services-298b78a64c1aa3c7.d: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/debug/deps/veil_services-298b78a64c1aa3c7: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

crates/services/src/lib.rs:
crates/services/src/enc.rs:
crates/services/src/kci.rs:
crates/services/src/log.rs:
