/root/repo/target/debug/deps/cache_differential-a821c02183aef58b.d: tests/cache_differential.rs Cargo.toml

/root/repo/target/debug/deps/libcache_differential-a821c02183aef58b.rmeta: tests/cache_differential.rs Cargo.toml

tests/cache_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
