/root/repo/target/debug/deps/veil-c58c7ca1bea3dbcd.d: src/lib.rs

/root/repo/target/debug/deps/libveil-c58c7ca1bea3dbcd.rlib: src/lib.rs

/root/repo/target/debug/deps/libveil-c58c7ca1bea3dbcd.rmeta: src/lib.rs

src/lib.rs:
