/root/repo/target/debug/deps/reproduce-31a27cd3ac557051.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-31a27cd3ac557051: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
