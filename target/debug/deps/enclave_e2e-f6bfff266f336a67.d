/root/repo/target/debug/deps/enclave_e2e-f6bfff266f336a67.d: crates/sdk/tests/enclave_e2e.rs

/root/repo/target/debug/deps/enclave_e2e-f6bfff266f336a67: crates/sdk/tests/enclave_e2e.rs

crates/sdk/tests/enclave_e2e.rs:
