/root/repo/target/debug/deps/hermeticity-7b599264c7b28d46.d: tests/hermeticity.rs

/root/repo/target/debug/deps/hermeticity-7b599264c7b28d46: tests/hermeticity.rs

tests/hermeticity.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
