/root/repo/target/debug/deps/reproduce-32e9fb69accf5012.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-32e9fb69accf5012: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
