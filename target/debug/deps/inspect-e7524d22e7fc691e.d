/root/repo/target/debug/deps/inspect-e7524d22e7fc691e.d: crates/bench/src/bin/inspect.rs Cargo.toml

/root/repo/target/debug/deps/libinspect-e7524d22e7fc691e.rmeta: crates/bench/src/bin/inspect.rs Cargo.toml

crates/bench/src/bin/inspect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
