/root/repo/target/debug/deps/experiments_regression-889dac476089410c.d: tests/experiments_regression.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments_regression-889dac476089410c.rmeta: tests/experiments_regression.rs Cargo.toml

tests/experiments_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
