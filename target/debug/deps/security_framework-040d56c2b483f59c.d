/root/repo/target/debug/deps/security_framework-040d56c2b483f59c.d: tests/security_framework.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity_framework-040d56c2b483f59c.rmeta: tests/security_framework.rs Cargo.toml

tests/security_framework.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
