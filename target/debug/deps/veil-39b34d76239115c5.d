/root/repo/target/debug/deps/veil-39b34d76239115c5.d: src/lib.rs

/root/repo/target/debug/deps/veil-39b34d76239115c5: src/lib.rs

src/lib.rs:
