/root/repo/target/debug/deps/security_validation-2ac2e1309ea91f63.d: tests/security_validation.rs

/root/repo/target/debug/deps/security_validation-2ac2e1309ea91f63: tests/security_validation.rs

tests/security_validation.rs:
