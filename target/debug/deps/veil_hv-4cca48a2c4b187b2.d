/root/repo/target/debug/deps/veil_hv-4cca48a2c4b187b2.d: crates/hv/src/lib.rs

/root/repo/target/debug/deps/libveil_hv-4cca48a2c4b187b2.rlib: crates/hv/src/lib.rs

/root/repo/target/debug/deps/libveil_hv-4cca48a2c4b187b2.rmeta: crates/hv/src/lib.rs

crates/hv/src/lib.rs:
