/root/repo/target/debug/deps/domain_switch-5255149f23e02269.d: crates/bench/benches/domain_switch.rs Cargo.toml

/root/repo/target/debug/deps/libdomain_switch-5255149f23e02269.rmeta: crates/bench/benches/domain_switch.rs Cargo.toml

crates/bench/benches/domain_switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
