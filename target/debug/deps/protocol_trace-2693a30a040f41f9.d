/root/repo/target/debug/deps/protocol_trace-2693a30a040f41f9.d: tests/protocol_trace.rs

/root/repo/target/debug/deps/protocol_trace-2693a30a040f41f9: tests/protocol_trace.rs

tests/protocol_trace.rs:
