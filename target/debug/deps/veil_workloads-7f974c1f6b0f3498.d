/root/repo/target/debug/deps/veil_workloads-7f974c1f6b0f3498.d: crates/workloads/src/lib.rs crates/workloads/src/compress.rs crates/workloads/src/driver.rs crates/workloads/src/http.rs crates/workloads/src/kvstore.rs crates/workloads/src/mbedtls.rs crates/workloads/src/memcached.rs crates/workloads/src/minidb.rs crates/workloads/src/openssl.rs crates/workloads/src/spec_cpu.rs

/root/repo/target/debug/deps/libveil_workloads-7f974c1f6b0f3498.rlib: crates/workloads/src/lib.rs crates/workloads/src/compress.rs crates/workloads/src/driver.rs crates/workloads/src/http.rs crates/workloads/src/kvstore.rs crates/workloads/src/mbedtls.rs crates/workloads/src/memcached.rs crates/workloads/src/minidb.rs crates/workloads/src/openssl.rs crates/workloads/src/spec_cpu.rs

/root/repo/target/debug/deps/libveil_workloads-7f974c1f6b0f3498.rmeta: crates/workloads/src/lib.rs crates/workloads/src/compress.rs crates/workloads/src/driver.rs crates/workloads/src/http.rs crates/workloads/src/kvstore.rs crates/workloads/src/mbedtls.rs crates/workloads/src/memcached.rs crates/workloads/src/minidb.rs crates/workloads/src/openssl.rs crates/workloads/src/spec_cpu.rs

crates/workloads/src/lib.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/http.rs:
crates/workloads/src/kvstore.rs:
crates/workloads/src/mbedtls.rs:
crates/workloads/src/memcached.rs:
crates/workloads/src/minidb.rs:
crates/workloads/src/openssl.rs:
crates/workloads/src/spec_cpu.rs:
