/root/repo/target/debug/deps/veil_bench-79bb7860db4236aa.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/libveil_bench-79bb7860db4236aa.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/libveil_bench-79bb7860db4236aa.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
