/root/repo/target/debug/deps/enclave_apps-3015516926fd48cc.d: crates/bench/benches/enclave_apps.rs Cargo.toml

/root/repo/target/debug/deps/libenclave_apps-3015516926fd48cc.rmeta: crates/bench/benches/enclave_apps.rs Cargo.toml

crates/bench/benches/enclave_apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
