/root/repo/target/debug/deps/protocol_trace-b41eff6083651457.d: tests/protocol_trace.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_trace-b41eff6083651457.rmeta: tests/protocol_trace.rs Cargo.toml

tests/protocol_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
