/root/repo/target/debug/deps/enclave_apps-a321227053a83807.d: crates/bench/benches/enclave_apps.rs

/root/repo/target/debug/deps/enclave_apps-a321227053a83807: crates/bench/benches/enclave_apps.rs

crates/bench/benches/enclave_apps.rs:
