/root/repo/target/debug/deps/ltp_suite-49d1d585ff03222b.d: tests/ltp_suite.rs

/root/repo/target/debug/deps/ltp_suite-49d1d585ff03222b: tests/ltp_suite.rs

tests/ltp_suite.rs:
