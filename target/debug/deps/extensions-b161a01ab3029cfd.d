/root/repo/target/debug/deps/extensions-b161a01ab3029cfd.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-b161a01ab3029cfd: tests/extensions.rs

tests/extensions.rs:
