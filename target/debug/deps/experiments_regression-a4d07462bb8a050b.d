/root/repo/target/debug/deps/experiments_regression-a4d07462bb8a050b.d: tests/experiments_regression.rs

/root/repo/target/debug/deps/experiments_regression-a4d07462bb8a050b: tests/experiments_regression.rs

tests/experiments_regression.rs:
