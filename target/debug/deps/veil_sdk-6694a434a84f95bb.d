/root/repo/target/debug/deps/veil_sdk-6694a434a84f95bb.d: crates/sdk/src/lib.rs crates/sdk/src/batch.rs crates/sdk/src/binary.rs crates/sdk/src/heap.rs crates/sdk/src/install.rs crates/sdk/src/ltp.rs crates/sdk/src/runtime.rs crates/sdk/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libveil_sdk-6694a434a84f95bb.rmeta: crates/sdk/src/lib.rs crates/sdk/src/batch.rs crates/sdk/src/binary.rs crates/sdk/src/heap.rs crates/sdk/src/install.rs crates/sdk/src/ltp.rs crates/sdk/src/runtime.rs crates/sdk/src/spec.rs Cargo.toml

crates/sdk/src/lib.rs:
crates/sdk/src/batch.rs:
crates/sdk/src/binary.rs:
crates/sdk/src/heap.rs:
crates/sdk/src/install.rs:
crates/sdk/src/ltp.rs:
crates/sdk/src/runtime.rs:
crates/sdk/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
