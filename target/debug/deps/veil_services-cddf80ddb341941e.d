/root/repo/target/debug/deps/veil_services-cddf80ddb341941e.d: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/debug/deps/libveil_services-cddf80ddb341941e.rlib: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/debug/deps/libveil_services-cddf80ddb341941e.rmeta: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

crates/services/src/lib.rs:
crates/services/src/enc.rs:
crates/services/src/kci.rs:
crates/services/src/log.rs:
