/root/repo/target/debug/deps/veil_bench-d9a82487ddd8ac13.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/veil_bench-d9a82487ddd8ac13: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
