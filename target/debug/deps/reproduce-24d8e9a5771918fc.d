/root/repo/target/debug/deps/reproduce-24d8e9a5771918fc.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-24d8e9a5771918fc: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
