/root/repo/target/debug/deps/audit_log-ee77e5d551292cb6.d: crates/bench/benches/audit_log.rs

/root/repo/target/debug/deps/audit_log-ee77e5d551292cb6: crates/bench/benches/audit_log.rs

crates/bench/benches/audit_log.rs:
