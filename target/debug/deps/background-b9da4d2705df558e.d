/root/repo/target/debug/deps/background-b9da4d2705df558e.d: crates/bench/benches/background.rs

/root/repo/target/debug/deps/background-b9da4d2705df558e: crates/bench/benches/background.rs

crates/bench/benches/background.rs:
