/root/repo/target/debug/deps/ablations-1faa13e0cc87bd3a.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-1faa13e0cc87bd3a: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
