/root/repo/target/debug/deps/extensions-c035711670024890.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-c035711670024890: tests/extensions.rs

tests/extensions.rs:
