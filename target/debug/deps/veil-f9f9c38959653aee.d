/root/repo/target/debug/deps/veil-f9f9c38959653aee.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libveil-f9f9c38959653aee.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
