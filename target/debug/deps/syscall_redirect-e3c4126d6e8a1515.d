/root/repo/target/debug/deps/syscall_redirect-e3c4126d6e8a1515.d: crates/bench/benches/syscall_redirect.rs Cargo.toml

/root/repo/target/debug/deps/libsyscall_redirect-e3c4126d6e8a1515.rmeta: crates/bench/benches/syscall_redirect.rs Cargo.toml

crates/bench/benches/syscall_redirect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
