/root/repo/target/debug/deps/inspect-3c385caad5fb0c16.d: crates/bench/src/bin/inspect.rs

/root/repo/target/debug/deps/inspect-3c385caad5fb0c16: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
