/root/repo/target/debug/deps/extensions-891725e950b0419a.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-891725e950b0419a.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
