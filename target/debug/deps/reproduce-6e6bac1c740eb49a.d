/root/repo/target/debug/deps/reproduce-6e6bac1c740eb49a.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-6e6bac1c740eb49a: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
