/root/repo/target/debug/deps/veil_trace-965ae989bacf1a4a.d: crates/trace/src/lib.rs crates/trace/src/cache.rs crates/trace/src/event.rs crates/trace/src/invariants_impl.rs crates/trace/src/tracer.rs

/root/repo/target/debug/deps/veil_trace-965ae989bacf1a4a: crates/trace/src/lib.rs crates/trace/src/cache.rs crates/trace/src/event.rs crates/trace/src/invariants_impl.rs crates/trace/src/tracer.rs

crates/trace/src/lib.rs:
crates/trace/src/cache.rs:
crates/trace/src/event.rs:
crates/trace/src/invariants_impl.rs:
crates/trace/src/tracer.rs:
