/root/repo/target/debug/deps/enclave_e2e-256bf5c7c2e59963.d: crates/sdk/tests/enclave_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libenclave_e2e-256bf5c7c2e59963.rmeta: crates/sdk/tests/enclave_e2e.rs Cargo.toml

crates/sdk/tests/enclave_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
