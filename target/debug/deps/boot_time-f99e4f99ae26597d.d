/root/repo/target/debug/deps/boot_time-f99e4f99ae26597d.d: crates/bench/benches/boot_time.rs

/root/repo/target/debug/deps/boot_time-f99e4f99ae26597d: crates/bench/benches/boot_time.rs

crates/bench/benches/boot_time.rs:
