/root/repo/target/debug/deps/veil-481d8c189bde7169.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libveil-481d8c189bde7169.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
