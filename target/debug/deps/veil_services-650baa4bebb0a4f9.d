/root/repo/target/debug/deps/veil_services-650baa4bebb0a4f9.d: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs Cargo.toml

/root/repo/target/debug/deps/libveil_services-650baa4bebb0a4f9.rmeta: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs Cargo.toml

crates/services/src/lib.rs:
crates/services/src/enc.rs:
crates/services/src/kci.rs:
crates/services/src/log.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
