/root/repo/target/debug/deps/inspect-31137d441bb4e465.d: crates/bench/src/bin/inspect.rs

/root/repo/target/debug/deps/inspect-31137d441bb4e465: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
