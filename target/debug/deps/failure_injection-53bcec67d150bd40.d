/root/repo/target/debug/deps/failure_injection-53bcec67d150bd40.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-53bcec67d150bd40: tests/failure_injection.rs

tests/failure_injection.rs:
