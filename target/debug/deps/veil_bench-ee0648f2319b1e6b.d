/root/repo/target/debug/deps/veil_bench-ee0648f2319b1e6b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/veil_bench-ee0648f2319b1e6b: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
