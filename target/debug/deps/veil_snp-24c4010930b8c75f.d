/root/repo/target/debug/deps/veil_snp-24c4010930b8c75f.d: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/vmsa.rs

/root/repo/target/debug/deps/veil_snp-24c4010930b8c75f: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/vmsa.rs

crates/snp/src/lib.rs:
crates/snp/src/attest.rs:
crates/snp/src/cost.rs:
crates/snp/src/fault.rs:
crates/snp/src/ghcb.rs:
crates/snp/src/machine.rs:
crates/snp/src/mem.rs:
crates/snp/src/perms.rs:
crates/snp/src/pt.rs:
crates/snp/src/rmp.rs:
crates/snp/src/vmsa.rs:
