/root/repo/target/debug/deps/stale_tlb-0b522431c6d5a547.d: tests/stale_tlb.rs Cargo.toml

/root/repo/target/debug/deps/libstale_tlb-0b522431c6d5a547.rmeta: tests/stale_tlb.rs Cargo.toml

tests/stale_tlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
