/root/repo/target/debug/deps/scratch_probe-404f02f617ee0f7e.d: tests/scratch_probe.rs

/root/repo/target/debug/deps/scratch_probe-404f02f617ee0f7e: tests/scratch_probe.rs

tests/scratch_probe.rs:
