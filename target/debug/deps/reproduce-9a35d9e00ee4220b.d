/root/repo/target/debug/deps/reproduce-9a35d9e00ee4220b.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-9a35d9e00ee4220b.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
