/root/repo/target/debug/deps/veil_testkit-4464bfe07a6935b1.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/trace.rs

/root/repo/target/debug/deps/veil_testkit-4464bfe07a6935b1: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/trace.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/fmt.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/trace.rs:
