/root/repo/target/debug/deps/experiments_regression-5976b68e69495331.d: tests/experiments_regression.rs

/root/repo/target/debug/deps/experiments_regression-5976b68e69495331: tests/experiments_regression.rs

tests/experiments_regression.rs:
