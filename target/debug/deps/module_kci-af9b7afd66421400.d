/root/repo/target/debug/deps/module_kci-af9b7afd66421400.d: crates/bench/benches/module_kci.rs

/root/repo/target/debug/deps/module_kci-af9b7afd66421400: crates/bench/benches/module_kci.rs

crates/bench/benches/module_kci.rs:
