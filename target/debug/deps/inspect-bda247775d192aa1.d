/root/repo/target/debug/deps/inspect-bda247775d192aa1.d: crates/bench/src/bin/inspect.rs

/root/repo/target/debug/deps/inspect-bda247775d192aa1: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
