/root/repo/target/debug/deps/audit_log-76fa005eb92aa572.d: crates/bench/benches/audit_log.rs Cargo.toml

/root/repo/target/debug/deps/libaudit_log-76fa005eb92aa572.rmeta: crates/bench/benches/audit_log.rs Cargo.toml

crates/bench/benches/audit_log.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
