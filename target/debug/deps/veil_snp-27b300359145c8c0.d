/root/repo/target/debug/deps/veil_snp-27b300359145c8c0.d: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/tlb.rs crates/snp/src/vmsa.rs Cargo.toml

/root/repo/target/debug/deps/libveil_snp-27b300359145c8c0.rmeta: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/tlb.rs crates/snp/src/vmsa.rs Cargo.toml

crates/snp/src/lib.rs:
crates/snp/src/attest.rs:
crates/snp/src/cost.rs:
crates/snp/src/fault.rs:
crates/snp/src/ghcb.rs:
crates/snp/src/machine.rs:
crates/snp/src/mem.rs:
crates/snp/src/perms.rs:
crates/snp/src/pt.rs:
crates/snp/src/rmp.rs:
crates/snp/src/tlb.rs:
crates/snp/src/vmsa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
