/root/repo/target/debug/deps/end_to_end-96e505a8d2d7a91e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-96e505a8d2d7a91e: tests/end_to_end.rs

tests/end_to_end.rs:
