/root/repo/target/debug/deps/failure_injection-d5a977c7e082f2a9.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-d5a977c7e082f2a9: tests/failure_injection.rs

tests/failure_injection.rs:
