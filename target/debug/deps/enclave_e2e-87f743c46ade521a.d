/root/repo/target/debug/deps/enclave_e2e-87f743c46ade521a.d: crates/sdk/tests/enclave_e2e.rs

/root/repo/target/debug/deps/enclave_e2e-87f743c46ade521a: crates/sdk/tests/enclave_e2e.rs

crates/sdk/tests/enclave_e2e.rs:
