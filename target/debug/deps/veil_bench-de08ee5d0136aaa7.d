/root/repo/target/debug/deps/veil_bench-de08ee5d0136aaa7.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/libveil_bench-de08ee5d0136aaa7.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/libveil_bench-de08ee5d0136aaa7.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
