/root/repo/target/debug/deps/veil-f05ab214929aa3a6.d: src/lib.rs

/root/repo/target/debug/deps/veil-f05ab214929aa3a6: src/lib.rs

src/lib.rs:
