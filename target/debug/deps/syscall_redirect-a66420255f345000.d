/root/repo/target/debug/deps/syscall_redirect-a66420255f345000.d: crates/bench/benches/syscall_redirect.rs Cargo.toml

/root/repo/target/debug/deps/libsyscall_redirect-a66420255f345000.rmeta: crates/bench/benches/syscall_redirect.rs Cargo.toml

crates/bench/benches/syscall_redirect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
