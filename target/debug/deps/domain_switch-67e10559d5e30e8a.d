/root/repo/target/debug/deps/domain_switch-67e10559d5e30e8a.d: crates/bench/benches/domain_switch.rs

/root/repo/target/debug/deps/domain_switch-67e10559d5e30e8a: crates/bench/benches/domain_switch.rs

crates/bench/benches/domain_switch.rs:
