/root/repo/target/debug/deps/ablations-a5434cba8235d340.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-a5434cba8235d340.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
