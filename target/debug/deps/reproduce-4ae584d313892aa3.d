/root/repo/target/debug/deps/reproduce-4ae584d313892aa3.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-4ae584d313892aa3: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
