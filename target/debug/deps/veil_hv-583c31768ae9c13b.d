/root/repo/target/debug/deps/veil_hv-583c31768ae9c13b.d: crates/hv/src/lib.rs

/root/repo/target/debug/deps/veil_hv-583c31768ae9c13b: crates/hv/src/lib.rs

crates/hv/src/lib.rs:
