/root/repo/target/debug/deps/hotpath-08e62dd6fba1b69a.d: crates/bench/src/bin/hotpath.rs Cargo.toml

/root/repo/target/debug/deps/libhotpath-08e62dd6fba1b69a.rmeta: crates/bench/src/bin/hotpath.rs Cargo.toml

crates/bench/src/bin/hotpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
