/root/repo/target/debug/deps/cache_differential-1a9ad3194ae74d75.d: tests/cache_differential.rs

/root/repo/target/debug/deps/cache_differential-1a9ad3194ae74d75: tests/cache_differential.rs

tests/cache_differential.rs:
