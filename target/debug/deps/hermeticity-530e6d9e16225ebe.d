/root/repo/target/debug/deps/hermeticity-530e6d9e16225ebe.d: tests/hermeticity.rs

/root/repo/target/debug/deps/hermeticity-530e6d9e16225ebe: tests/hermeticity.rs

tests/hermeticity.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
