/root/repo/target/debug/deps/security_enclave-bfe5b9cbc384af38.d: tests/security_enclave.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity_enclave-bfe5b9cbc384af38.rmeta: tests/security_enclave.rs Cargo.toml

tests/security_enclave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
