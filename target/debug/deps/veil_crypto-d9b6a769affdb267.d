/root/repo/target/debug/deps/veil_crypto-d9b6a769affdb267.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/dh.rs crates/crypto/src/drbg.rs crates/crypto/src/hmac.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libveil_crypto-d9b6a769affdb267.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/dh.rs crates/crypto/src/drbg.rs crates/crypto/src/hmac.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libveil_crypto-d9b6a769affdb267.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/dh.rs crates/crypto/src/drbg.rs crates/crypto/src/hmac.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/dh.rs:
crates/crypto/src/drbg.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/sha256.rs:
