/root/repo/target/debug/deps/boot_time-745b61dc0c57bd6f.d: crates/bench/benches/boot_time.rs Cargo.toml

/root/repo/target/debug/deps/libboot_time-745b61dc0c57bd6f.rmeta: crates/bench/benches/boot_time.rs Cargo.toml

crates/bench/benches/boot_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
