/root/repo/target/debug/deps/trace_invariants-3c9d597351ea711d.d: tests/trace_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_invariants-3c9d597351ea711d.rmeta: tests/trace_invariants.rs Cargo.toml

tests/trace_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
