/root/repo/target/debug/deps/hotpath-791b43c46df6304c.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/debug/deps/hotpath-791b43c46df6304c: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
