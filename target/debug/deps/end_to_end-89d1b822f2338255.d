/root/repo/target/debug/deps/end_to_end-89d1b822f2338255.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-89d1b822f2338255: tests/end_to_end.rs

tests/end_to_end.rs:
