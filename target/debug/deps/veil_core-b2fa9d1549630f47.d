/root/repo/target/debug/deps/veil_core-b2fa9d1549630f47.d: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs

/root/repo/target/debug/deps/libveil_core-b2fa9d1549630f47.rlib: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs

/root/repo/target/debug/deps/libveil_core-b2fa9d1549630f47.rmeta: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs

crates/core/src/lib.rs:
crates/core/src/cvm.rs:
crates/core/src/domain.rs:
crates/core/src/gate.rs:
crates/core/src/idcb.rs:
crates/core/src/layout.rs:
crates/core/src/monitor.rs:
crates/core/src/remote.rs:
crates/core/src/service.rs:
