/root/repo/target/debug/deps/properties-58f23512080b2c28.d: tests/properties.rs

/root/repo/target/debug/deps/properties-58f23512080b2c28: tests/properties.rs

tests/properties.rs:
