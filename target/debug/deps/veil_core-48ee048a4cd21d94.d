/root/repo/target/debug/deps/veil_core-48ee048a4cd21d94.d: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libveil_core-48ee048a4cd21d94.rmeta: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cvm.rs:
crates/core/src/domain.rs:
crates/core/src/gate.rs:
crates/core/src/idcb.rs:
crates/core/src/layout.rs:
crates/core/src/monitor.rs:
crates/core/src/remote.rs:
crates/core/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
