/root/repo/target/debug/deps/scratch_seed_demo-9e103ef44a12de2e.d: tests/scratch_seed_demo.rs

/root/repo/target/debug/deps/scratch_seed_demo-9e103ef44a12de2e: tests/scratch_seed_demo.rs

tests/scratch_seed_demo.rs:
