/root/repo/target/debug/deps/veil_os-7d14ca7a9b8f686a.d: crates/os/src/lib.rs crates/os/src/audit.rs crates/os/src/error.rs crates/os/src/frames.rs crates/os/src/kernel.rs crates/os/src/module.rs crates/os/src/monitor.rs crates/os/src/process.rs crates/os/src/socket.rs crates/os/src/sys.rs crates/os/src/syscall.rs crates/os/src/vfs.rs

/root/repo/target/debug/deps/libveil_os-7d14ca7a9b8f686a.rlib: crates/os/src/lib.rs crates/os/src/audit.rs crates/os/src/error.rs crates/os/src/frames.rs crates/os/src/kernel.rs crates/os/src/module.rs crates/os/src/monitor.rs crates/os/src/process.rs crates/os/src/socket.rs crates/os/src/sys.rs crates/os/src/syscall.rs crates/os/src/vfs.rs

/root/repo/target/debug/deps/libveil_os-7d14ca7a9b8f686a.rmeta: crates/os/src/lib.rs crates/os/src/audit.rs crates/os/src/error.rs crates/os/src/frames.rs crates/os/src/kernel.rs crates/os/src/module.rs crates/os/src/monitor.rs crates/os/src/process.rs crates/os/src/socket.rs crates/os/src/sys.rs crates/os/src/syscall.rs crates/os/src/vfs.rs

crates/os/src/lib.rs:
crates/os/src/audit.rs:
crates/os/src/error.rs:
crates/os/src/frames.rs:
crates/os/src/kernel.rs:
crates/os/src/module.rs:
crates/os/src/monitor.rs:
crates/os/src/process.rs:
crates/os/src/socket.rs:
crates/os/src/sys.rs:
crates/os/src/syscall.rs:
crates/os/src/vfs.rs:
