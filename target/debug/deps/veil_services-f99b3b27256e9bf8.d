/root/repo/target/debug/deps/veil_services-f99b3b27256e9bf8.d: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/debug/deps/libveil_services-f99b3b27256e9bf8.rlib: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/debug/deps/libveil_services-f99b3b27256e9bf8.rmeta: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

crates/services/src/lib.rs:
crates/services/src/enc.rs:
crates/services/src/kci.rs:
crates/services/src/log.rs:
