/root/repo/target/debug/deps/audit_log-c79018038344b93b.d: crates/bench/benches/audit_log.rs Cargo.toml

/root/repo/target/debug/deps/libaudit_log-c79018038344b93b.rmeta: crates/bench/benches/audit_log.rs Cargo.toml

crates/bench/benches/audit_log.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
