/root/repo/target/debug/deps/properties-a89066c9415c5521.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a89066c9415c5521.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
