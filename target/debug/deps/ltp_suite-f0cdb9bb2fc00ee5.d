/root/repo/target/debug/deps/ltp_suite-f0cdb9bb2fc00ee5.d: tests/ltp_suite.rs

/root/repo/target/debug/deps/ltp_suite-f0cdb9bb2fc00ee5: tests/ltp_suite.rs

tests/ltp_suite.rs:
