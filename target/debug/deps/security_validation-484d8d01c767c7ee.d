/root/repo/target/debug/deps/security_validation-484d8d01c767c7ee.d: tests/security_validation.rs

/root/repo/target/debug/deps/security_validation-484d8d01c767c7ee: tests/security_validation.rs

tests/security_validation.rs:
