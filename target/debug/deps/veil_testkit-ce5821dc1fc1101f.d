/root/repo/target/debug/deps/veil_testkit-ce5821dc1fc1101f.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs

/root/repo/target/debug/deps/veil_testkit-ce5821dc1fc1101f: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/fmt.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
