/root/repo/target/debug/deps/syscall_redirect-aed6ed5c09489837.d: crates/bench/benches/syscall_redirect.rs

/root/repo/target/debug/deps/syscall_redirect-aed6ed5c09489837: crates/bench/benches/syscall_redirect.rs

crates/bench/benches/syscall_redirect.rs:
