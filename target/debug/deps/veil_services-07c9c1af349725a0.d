/root/repo/target/debug/deps/veil_services-07c9c1af349725a0.d: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/debug/deps/libveil_services-07c9c1af349725a0.rlib: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/debug/deps/libveil_services-07c9c1af349725a0.rmeta: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

crates/services/src/lib.rs:
crates/services/src/enc.rs:
crates/services/src/kci.rs:
crates/services/src/log.rs:
