/root/repo/target/debug/deps/security_enclave-843c5092b720432b.d: tests/security_enclave.rs

/root/repo/target/debug/deps/security_enclave-843c5092b720432b: tests/security_enclave.rs

tests/security_enclave.rs:
