/root/repo/target/debug/deps/security_framework-07f5ddecaedf1301.d: tests/security_framework.rs

/root/repo/target/debug/deps/security_framework-07f5ddecaedf1301: tests/security_framework.rs

tests/security_framework.rs:
