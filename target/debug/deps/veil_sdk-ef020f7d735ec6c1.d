/root/repo/target/debug/deps/veil_sdk-ef020f7d735ec6c1.d: crates/sdk/src/lib.rs crates/sdk/src/batch.rs crates/sdk/src/binary.rs crates/sdk/src/heap.rs crates/sdk/src/install.rs crates/sdk/src/ltp.rs crates/sdk/src/runtime.rs crates/sdk/src/spec.rs

/root/repo/target/debug/deps/libveil_sdk-ef020f7d735ec6c1.rlib: crates/sdk/src/lib.rs crates/sdk/src/batch.rs crates/sdk/src/binary.rs crates/sdk/src/heap.rs crates/sdk/src/install.rs crates/sdk/src/ltp.rs crates/sdk/src/runtime.rs crates/sdk/src/spec.rs

/root/repo/target/debug/deps/libveil_sdk-ef020f7d735ec6c1.rmeta: crates/sdk/src/lib.rs crates/sdk/src/batch.rs crates/sdk/src/binary.rs crates/sdk/src/heap.rs crates/sdk/src/install.rs crates/sdk/src/ltp.rs crates/sdk/src/runtime.rs crates/sdk/src/spec.rs

crates/sdk/src/lib.rs:
crates/sdk/src/batch.rs:
crates/sdk/src/binary.rs:
crates/sdk/src/heap.rs:
crates/sdk/src/install.rs:
crates/sdk/src/ltp.rs:
crates/sdk/src/runtime.rs:
crates/sdk/src/spec.rs:
