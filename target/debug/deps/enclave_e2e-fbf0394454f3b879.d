/root/repo/target/debug/deps/enclave_e2e-fbf0394454f3b879.d: crates/sdk/tests/enclave_e2e.rs

/root/repo/target/debug/deps/enclave_e2e-fbf0394454f3b879: crates/sdk/tests/enclave_e2e.rs

crates/sdk/tests/enclave_e2e.rs:
