/root/repo/target/debug/deps/protocol_trace-ba0f35029cd6fd8a.d: tests/protocol_trace.rs

/root/repo/target/debug/deps/protocol_trace-ba0f35029cd6fd8a: tests/protocol_trace.rs

tests/protocol_trace.rs:
