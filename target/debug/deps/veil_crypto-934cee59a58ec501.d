/root/repo/target/debug/deps/veil_crypto-934cee59a58ec501.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/dh.rs crates/crypto/src/drbg.rs crates/crypto/src/hmac.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/veil_crypto-934cee59a58ec501: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/dh.rs crates/crypto/src/drbg.rs crates/crypto/src/hmac.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/dh.rs:
crates/crypto/src/drbg.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/sha256.rs:
