/root/repo/target/debug/deps/veil_testkit-3af67d5bb29a74bf.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/trace.rs

/root/repo/target/debug/deps/libveil_testkit-3af67d5bb29a74bf.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/trace.rs

/root/repo/target/debug/deps/libveil_testkit-3af67d5bb29a74bf.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/trace.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/fmt.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/trace.rs:
