/root/repo/target/debug/deps/extensions-40eb7eb89ee81a80.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-40eb7eb89ee81a80: tests/extensions.rs

tests/extensions.rs:
