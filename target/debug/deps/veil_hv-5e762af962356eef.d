/root/repo/target/debug/deps/veil_hv-5e762af962356eef.d: crates/hv/src/lib.rs

/root/repo/target/debug/deps/libveil_hv-5e762af962356eef.rlib: crates/hv/src/lib.rs

/root/repo/target/debug/deps/libveil_hv-5e762af962356eef.rmeta: crates/hv/src/lib.rs

crates/hv/src/lib.rs:
