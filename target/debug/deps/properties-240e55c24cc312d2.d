/root/repo/target/debug/deps/properties-240e55c24cc312d2.d: tests/properties.rs

/root/repo/target/debug/deps/properties-240e55c24cc312d2: tests/properties.rs

tests/properties.rs:
