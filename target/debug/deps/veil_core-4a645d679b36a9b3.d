/root/repo/target/debug/deps/veil_core-4a645d679b36a9b3.d: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs

/root/repo/target/debug/deps/veil_core-4a645d679b36a9b3: crates/core/src/lib.rs crates/core/src/cvm.rs crates/core/src/domain.rs crates/core/src/gate.rs crates/core/src/idcb.rs crates/core/src/layout.rs crates/core/src/monitor.rs crates/core/src/remote.rs crates/core/src/service.rs

crates/core/src/lib.rs:
crates/core/src/cvm.rs:
crates/core/src/domain.rs:
crates/core/src/gate.rs:
crates/core/src/idcb.rs:
crates/core/src/layout.rs:
crates/core/src/monitor.rs:
crates/core/src/remote.rs:
crates/core/src/service.rs:
