/root/repo/target/debug/deps/inspect-cdb5cf4542f41cc6.d: crates/bench/src/bin/inspect.rs

/root/repo/target/debug/deps/inspect-cdb5cf4542f41cc6: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
