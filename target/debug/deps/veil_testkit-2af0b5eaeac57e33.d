/root/repo/target/debug/deps/veil_testkit-2af0b5eaeac57e33.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libveil_testkit-2af0b5eaeac57e33.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/fmt.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/trace.rs Cargo.toml

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/fmt.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
