/root/repo/target/debug/deps/protocol_trace-cc015d497d74ab24.d: tests/protocol_trace.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_trace-cc015d497d74ab24.rmeta: tests/protocol_trace.rs Cargo.toml

tests/protocol_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
