/root/repo/target/debug/deps/ltp_suite-ed94dd53c169c9e9.d: tests/ltp_suite.rs

/root/repo/target/debug/deps/ltp_suite-ed94dd53c169c9e9: tests/ltp_suite.rs

tests/ltp_suite.rs:
