/root/repo/target/debug/deps/security_framework-09a6e3cedf1c2c74.d: tests/security_framework.rs

/root/repo/target/debug/deps/security_framework-09a6e3cedf1c2c74: tests/security_framework.rs

tests/security_framework.rs:
