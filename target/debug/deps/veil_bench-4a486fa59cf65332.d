/root/repo/target/debug/deps/veil_bench-4a486fa59cf65332.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/libveil_bench-4a486fa59cf65332.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/libveil_bench-4a486fa59cf65332.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
