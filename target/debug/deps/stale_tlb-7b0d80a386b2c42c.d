/root/repo/target/debug/deps/stale_tlb-7b0d80a386b2c42c.d: tests/stale_tlb.rs

/root/repo/target/debug/deps/stale_tlb-7b0d80a386b2c42c: tests/stale_tlb.rs

tests/stale_tlb.rs:
