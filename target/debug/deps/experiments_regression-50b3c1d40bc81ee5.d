/root/repo/target/debug/deps/experiments_regression-50b3c1d40bc81ee5.d: tests/experiments_regression.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments_regression-50b3c1d40bc81ee5.rmeta: tests/experiments_regression.rs Cargo.toml

tests/experiments_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
