/root/repo/target/debug/deps/veil_workloads-cbd91a463431944a.d: crates/workloads/src/lib.rs crates/workloads/src/compress.rs crates/workloads/src/driver.rs crates/workloads/src/http.rs crates/workloads/src/kvstore.rs crates/workloads/src/mbedtls.rs crates/workloads/src/memcached.rs crates/workloads/src/minidb.rs crates/workloads/src/openssl.rs crates/workloads/src/spec_cpu.rs

/root/repo/target/debug/deps/veil_workloads-cbd91a463431944a: crates/workloads/src/lib.rs crates/workloads/src/compress.rs crates/workloads/src/driver.rs crates/workloads/src/http.rs crates/workloads/src/kvstore.rs crates/workloads/src/mbedtls.rs crates/workloads/src/memcached.rs crates/workloads/src/minidb.rs crates/workloads/src/openssl.rs crates/workloads/src/spec_cpu.rs

crates/workloads/src/lib.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/http.rs:
crates/workloads/src/kvstore.rs:
crates/workloads/src/mbedtls.rs:
crates/workloads/src/memcached.rs:
crates/workloads/src/minidb.rs:
crates/workloads/src/openssl.rs:
crates/workloads/src/spec_cpu.rs:
