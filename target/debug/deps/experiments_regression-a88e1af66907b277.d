/root/repo/target/debug/deps/experiments_regression-a88e1af66907b277.d: tests/experiments_regression.rs

/root/repo/target/debug/deps/experiments_regression-a88e1af66907b277: tests/experiments_regression.rs

tests/experiments_regression.rs:
