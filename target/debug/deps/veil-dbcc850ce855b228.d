/root/repo/target/debug/deps/veil-dbcc850ce855b228.d: src/lib.rs

/root/repo/target/debug/deps/veil-dbcc850ce855b228: src/lib.rs

src/lib.rs:
