/root/repo/target/debug/deps/inspect-0fefdadac493a32e.d: crates/bench/src/bin/inspect.rs Cargo.toml

/root/repo/target/debug/deps/libinspect-0fefdadac493a32e.rmeta: crates/bench/src/bin/inspect.rs Cargo.toml

crates/bench/src/bin/inspect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
