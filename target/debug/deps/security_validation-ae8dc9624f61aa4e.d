/root/repo/target/debug/deps/security_validation-ae8dc9624f61aa4e.d: tests/security_validation.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity_validation-ae8dc9624f61aa4e.rmeta: tests/security_validation.rs Cargo.toml

tests/security_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
