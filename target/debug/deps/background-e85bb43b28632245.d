/root/repo/target/debug/deps/background-e85bb43b28632245.d: crates/bench/benches/background.rs Cargo.toml

/root/repo/target/debug/deps/libbackground-e85bb43b28632245.rmeta: crates/bench/benches/background.rs Cargo.toml

crates/bench/benches/background.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
