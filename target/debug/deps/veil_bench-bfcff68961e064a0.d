/root/repo/target/debug/deps/veil_bench-bfcff68961e064a0.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/libveil_bench-bfcff68961e064a0.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/libveil_bench-bfcff68961e064a0.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
