/root/repo/target/debug/deps/failure_injection-510460cd4bb2d2f2.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-510460cd4bb2d2f2: tests/failure_injection.rs

tests/failure_injection.rs:
