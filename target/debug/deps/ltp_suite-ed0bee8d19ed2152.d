/root/repo/target/debug/deps/ltp_suite-ed0bee8d19ed2152.d: tests/ltp_suite.rs Cargo.toml

/root/repo/target/debug/deps/libltp_suite-ed0bee8d19ed2152.rmeta: tests/ltp_suite.rs Cargo.toml

tests/ltp_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
