/root/repo/target/debug/deps/properties-8fd7d0334aa599f5.d: tests/properties.rs

/root/repo/target/debug/deps/properties-8fd7d0334aa599f5: tests/properties.rs

tests/properties.rs:
