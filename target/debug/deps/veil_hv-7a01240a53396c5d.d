/root/repo/target/debug/deps/veil_hv-7a01240a53396c5d.d: crates/hv/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libveil_hv-7a01240a53396c5d.rmeta: crates/hv/src/lib.rs Cargo.toml

crates/hv/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
