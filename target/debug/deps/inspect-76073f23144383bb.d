/root/repo/target/debug/deps/inspect-76073f23144383bb.d: crates/bench/src/bin/inspect.rs

/root/repo/target/debug/deps/inspect-76073f23144383bb: crates/bench/src/bin/inspect.rs

crates/bench/src/bin/inspect.rs:
