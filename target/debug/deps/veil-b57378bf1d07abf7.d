/root/repo/target/debug/deps/veil-b57378bf1d07abf7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libveil-b57378bf1d07abf7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
