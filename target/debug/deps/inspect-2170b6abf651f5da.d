/root/repo/target/debug/deps/inspect-2170b6abf651f5da.d: crates/bench/src/bin/inspect.rs Cargo.toml

/root/repo/target/debug/deps/libinspect-2170b6abf651f5da.rmeta: crates/bench/src/bin/inspect.rs Cargo.toml

crates/bench/src/bin/inspect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
