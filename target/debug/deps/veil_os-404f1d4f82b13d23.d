/root/repo/target/debug/deps/veil_os-404f1d4f82b13d23.d: crates/os/src/lib.rs crates/os/src/audit.rs crates/os/src/error.rs crates/os/src/frames.rs crates/os/src/kernel.rs crates/os/src/module.rs crates/os/src/monitor.rs crates/os/src/process.rs crates/os/src/socket.rs crates/os/src/sys.rs crates/os/src/syscall.rs crates/os/src/vfs.rs Cargo.toml

/root/repo/target/debug/deps/libveil_os-404f1d4f82b13d23.rmeta: crates/os/src/lib.rs crates/os/src/audit.rs crates/os/src/error.rs crates/os/src/frames.rs crates/os/src/kernel.rs crates/os/src/module.rs crates/os/src/monitor.rs crates/os/src/process.rs crates/os/src/socket.rs crates/os/src/sys.rs crates/os/src/syscall.rs crates/os/src/vfs.rs Cargo.toml

crates/os/src/lib.rs:
crates/os/src/audit.rs:
crates/os/src/error.rs:
crates/os/src/frames.rs:
crates/os/src/kernel.rs:
crates/os/src/module.rs:
crates/os/src/monitor.rs:
crates/os/src/process.rs:
crates/os/src/socket.rs:
crates/os/src/sys.rs:
crates/os/src/syscall.rs:
crates/os/src/vfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
