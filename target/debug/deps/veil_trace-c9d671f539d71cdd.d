/root/repo/target/debug/deps/veil_trace-c9d671f539d71cdd.d: crates/trace/src/lib.rs crates/trace/src/cache.rs crates/trace/src/event.rs crates/trace/src/invariants_impl.rs crates/trace/src/tracer.rs

/root/repo/target/debug/deps/libveil_trace-c9d671f539d71cdd.rlib: crates/trace/src/lib.rs crates/trace/src/cache.rs crates/trace/src/event.rs crates/trace/src/invariants_impl.rs crates/trace/src/tracer.rs

/root/repo/target/debug/deps/libveil_trace-c9d671f539d71cdd.rmeta: crates/trace/src/lib.rs crates/trace/src/cache.rs crates/trace/src/event.rs crates/trace/src/invariants_impl.rs crates/trace/src/tracer.rs

crates/trace/src/lib.rs:
crates/trace/src/cache.rs:
crates/trace/src/event.rs:
crates/trace/src/invariants_impl.rs:
crates/trace/src/tracer.rs:
