/root/repo/target/debug/deps/veil_services-300a6d142f90fd1a.d: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

/root/repo/target/debug/deps/veil_services-300a6d142f90fd1a: crates/services/src/lib.rs crates/services/src/enc.rs crates/services/src/kci.rs crates/services/src/log.rs

crates/services/src/lib.rs:
crates/services/src/enc.rs:
crates/services/src/kci.rs:
crates/services/src/log.rs:
