/root/repo/target/debug/deps/veil_snp-4539cef6faca9ced.d: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/tlb.rs crates/snp/src/vmsa.rs

/root/repo/target/debug/deps/veil_snp-4539cef6faca9ced: crates/snp/src/lib.rs crates/snp/src/attest.rs crates/snp/src/cost.rs crates/snp/src/fault.rs crates/snp/src/ghcb.rs crates/snp/src/machine.rs crates/snp/src/mem.rs crates/snp/src/perms.rs crates/snp/src/pt.rs crates/snp/src/rmp.rs crates/snp/src/tlb.rs crates/snp/src/vmsa.rs

crates/snp/src/lib.rs:
crates/snp/src/attest.rs:
crates/snp/src/cost.rs:
crates/snp/src/fault.rs:
crates/snp/src/ghcb.rs:
crates/snp/src/machine.rs:
crates/snp/src/mem.rs:
crates/snp/src/perms.rs:
crates/snp/src/pt.rs:
crates/snp/src/rmp.rs:
crates/snp/src/tlb.rs:
crates/snp/src/vmsa.rs:
