/root/repo/target/debug/deps/end_to_end-a376bf57176bbb72.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a376bf57176bbb72: tests/end_to_end.rs

tests/end_to_end.rs:
