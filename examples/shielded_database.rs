//! VeilS-ENC walkthrough: shield a database holding sensitive rows from
//! the CVM's own (untrusted) kernel.
//!
//! The scenario from the paper's introduction: a cloud tenant wants to
//! process personally-identifiable records inside a CVM, but cannot
//! trust the 31M-line commodity kernel it boots with. VeilS-ENC gives
//! the database an SGX-style enclave *inside* the CVM.
//!
//! Run with: `cargo run --example shielded_database`

use veil::prelude::*;
use veil_sdk::{install_enclave, remove_enclave, EnclaveBinary, EnclaveRuntime, EnclaveSys};
use veil_snp::mem::gpa_of;
use veil_snp::perms::Vmpl;
use veil_workloads::minidb::BTree;

fn main() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).build().expect("boot");
    let pid = cvm.spawn();

    // 1. Install the database binary as an enclave (kernel-module flow).
    let binary = EnclaveBinary::build("pii-database", 16 * 1024, 4 * 1024).with_heap_pages(24);
    let handle = install_enclave(&mut cvm, pid, &binary).expect("install");
    let measurement = cvm.gate.services.enc.enclave(handle.id).unwrap().measurement;
    println!(
        "enclave {} installed; measurement {}",
        handle.id,
        veil_crypto::sha256::hex(&measurement.0)
    );

    // 2. The remote user attests the enclave before sending records.
    let expected: Vec<_> = binary.expected_pages(handle.base);
    println!("(user can recompute the measurement from {} known pages)", expected.len());

    // 3. Run the database shielded. All syscalls are deep-copied and
    //    redirected; the record store lives in enclave memory.
    let mut rt = EnclaveRuntime::new(handle.clone());
    {
        let mut sys = EnclaveSys::activate(&mut cvm, &mut rt).expect("enter");
        let mut table = BTree::new();
        let journal = sys.open("/data/pii.journal", OpenFlags::wronly_create_trunc()).unwrap();
        for (ssn, name) in [(1234u64, "alice"), (5678, "bob"), (9012, "carol")] {
            table.insert(ssn, name.as_bytes().to_vec());
            // The journal only sees an opaque record id — plaintext PII
            // stays inside the enclave.
            sys.write(journal, format!("committed record #{ssn:04}\n").as_bytes()).unwrap();
        }
        assert_eq!(table.get(5678).map(|r| r.to_vec()), Some(b"bob".to_vec()));
        // Stash the secret index root in enclave heap memory.
        let secret_ptr = sys.rt.heap.malloc(64).unwrap();
        sys.mem_write(secret_ptr, b"index-encryption-key-material!!!").unwrap();
        sys.close(journal).unwrap();
        sys.deactivate().expect("exit");
        println!(
            "database ran shielded: {} syscalls redirected, {} boundary crossings, {} bytes copied",
            rt.stats.syscalls, rt.stats.crossings, rt.stats.bytes_copied
        );
    }

    // 4. A compromised kernel now tries to steal the records.
    let frame = handle.frames[0];
    let os_read = cvm.hv.machine.read(Vmpl::Vmpl3, gpa_of(frame), 64);
    println!("compromised kernel reads enclave page -> {os_read:?}");
    assert!(os_read.is_err(), "#NPF: enclave memory is sealed from Dom_UNT");

    let hv_read = cvm.hv.attack_read(gpa_of(frame), 64);
    println!("malicious hypervisor reads enclave page -> {hv_read:?}");
    assert!(hv_read.is_err());

    // 5. Teardown scrubs every enclave page before the OS gets it back.
    remove_enclave(&mut cvm, &handle).expect("destroy");
    let after = cvm.hv.machine.read(Vmpl::Vmpl3, gpa_of(frame), 64).unwrap();
    assert!(after.iter().all(|b| *b == 0));
    println!("enclave destroyed; reclaimed page is scrubbed ({} zero bytes)", after.len());
}
