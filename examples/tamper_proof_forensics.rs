//! VeilS-LOG walkthrough: forensic audit logs that survive a kernel
//! compromise.
//!
//! The §6.3 scenario: the attacker will eventually own the kernel and
//! will try to erase their tracks. Execute-ahead logging puts each
//! record into `Dom_SER` storage *before* the audited event proceeds;
//! after the compromise, the attacker can no longer reach the log.
//!
//! Run with: `cargo run --example tamper_proof_forensics`

use veil::prelude::*;
use veil_os::audit::AuditMode;
use veil_snp::mem::gpa_of;
use veil_snp::perms::Vmpl;

fn main() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).log_frames(64).build().expect("boot");

    // Attested secure channel with the remote analyst (§5.1).
    let golden = cvm.hv.machine.launch_measurement().unwrap();
    let analyst = RemoteUser::new(cvm.hv.machine.device_verification_key(), Some(golden), &[9; 32]);
    let (report, mon_pub) = cvm.gate.monitor.begin_channel(&mut cvm.hv).unwrap();
    let mut analyst_chan = analyst.verify_and_derive(&report, &mon_pub).expect("attestation");
    cvm.gate.monitor.complete_channel(&mut cvm.hv, &analyst.public()).unwrap();
    let mut service_chan = SecureChannel::new(cvm.gate.monitor.channel_key().unwrap());
    println!("analyst channel established after attestation");

    // Arm the paper's auditctl ruleset, sink = VeilS-LOG.
    cvm.kernel.audit.mode = AuditMode::VeilLog;
    cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();

    // Phase 1: the intrusion, while the kernel is still honest.
    let pid = cvm.spawn();
    {
        let mut sys = cvm.sys(pid);
        sys.setuid(0).unwrap(); // privilege escalation artifact
        let fd = sys.open("/etc/backdoor.sh", OpenFlags::rdwr_create()).unwrap();
        sys.write(fd, b"#!/bin/sh\nnc -l 31337\n").unwrap();
        sys.close(fd).unwrap();
        let s = sys.socket().unwrap();
        sys.connect(s, 4444).err(); // beaconing attempt (refused port)
    }
    let captured = cvm.gate.services.log.record_count();
    println!("{captured} audit records captured in Dom_SER storage");

    // Phase 2: the attacker owns the kernel and tries to erase evidence.
    let log_gpa = gpa_of(cvm.gate.monitor.layout.log_storage.start);
    let wipe = cvm.hv.machine.write(Vmpl::Vmpl3, log_gpa, &[0u8; 64]);
    println!("compromised kernel wipes the log -> {wipe:?}");
    assert!(wipe.is_err(), "#NPF: storage is unreachable from Dom_UNT");
    let peek = cvm.hv.machine.read(Vmpl::Vmpl3, log_gpa, 64);
    assert!(peek.is_err(), "it cannot even read which events were logged");

    // A forged retrieval command (no channel key) is refused.
    let forged = cvm.gate.services.log.retrieve_for_user(
        &mut cvm.hv,
        &mut service_chan.clone(),
        b"retrieve-and-prune",
    );
    println!("forged retrieval request -> {:?}", forged.err().map(|e| e.to_string()));

    // Phase 3: the analyst retrieves the evidence over the channel.
    let cmd = analyst_chan.seal(b"retrieve-and-prune");
    let sealed =
        cvm.gate.services.log.retrieve_for_user(&mut cvm.hv, &mut service_chan, &cmd).unwrap();
    println!("\nanalyst retrieved {} sealed records:", sealed.len());
    for s in &sealed {
        let bytes = analyst_chan.open(s).expect("authentic record");
        let rec = veil_os::audit::AuditRecord::from_bytes(&bytes).expect("parse");
        println!(
            "  seq {:>3}  pid {:>2}  uid {:>2}  {:<10} ret {}",
            rec.seq,
            rec.pid,
            rec.uid,
            rec.sysno.to_string(),
            rec.ret
        );
    }
    // The attack reconstruction is all there: setuid, file creation,
    // write, close, and the beacon attempt.
    assert!(sealed.len() >= 5);
    println!("\nforensic trail intact despite the kernel compromise.");
}
