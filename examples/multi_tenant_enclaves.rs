//! The §7/§10 extensions together: a multi-threaded enclave serving two
//! mutually-trusting enclave tenants over shared memory, with batched
//! syscall logging.
//!
//! Run with: `cargo run --example multi_tenant_enclaves`

use veil::prelude::*;
use veil_sdk::install::add_enclave_thread;
use veil_sdk::{install_enclave, BatchedSys, EnclaveBinary, EnclaveRuntime, EnclaveSys};
use veil_snp::perms::{Cpl, Vmpl};

const SHARE_WINDOW: u64 = 0x5800_0000;

fn main() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(2).build().expect("boot");

    // Tenant A: a data producer with a second worker thread on VCPU 1.
    let pid_a = cvm.spawn();
    let producer = install_enclave(
        &mut cvm,
        pid_a,
        &EnclaveBinary::build("producer", 8192, 4096).with_heap_pages(8),
    )
    .expect("install producer");
    let worker = add_enclave_thread(&mut cvm, &producer, 1).expect("second thread");
    println!(
        "producer enclave {}: {} threads (worker on vcpu {}, own GHCB {:#x})",
        producer.id,
        cvm.gate.services.enc.enclave(producer.id).unwrap().thread_count(),
        worker.vcpu,
        worker.ghcb_gfn,
    );

    // Tenant B: a consumer enclave in a different process.
    let pid_b = cvm.spawn();
    let consumer = install_enclave(&mut cvm, pid_b, &EnclaveBinary::build("consumer", 4096, 1024))
        .expect("install consumer");

    // The worker thread fills the shared buffer with batched logging.
    let buffer = producer.heap_base;
    {
        let mut rt = EnclaveRuntime::for_thread(producer.clone(), worker);
        let mut inner = EnclaveSys::activate(&mut cvm, &mut rt).expect("enter worker");
        let mut sys = BatchedSys::new(&mut inner, 8);
        sys.mem_write(buffer, b"aggregated tenant dataset v7").unwrap();
        for i in 0..16 {
            sys.print(&format!("produced chunk {i}\n")).unwrap(); // queued
        }
        sys.finish().unwrap();
        inner.deactivate().unwrap();
        println!(
            "worker thread: {} syscalls in {} crossings (batching: {}+ calls per exit pair)",
            rt.stats.syscalls,
            rt.stats.crossings,
            16 / (rt.stats.syscalls.max(1)),
        );
    }

    // Mutual sharing: producer offers, consumer accepts.
    cvm.gate.services.enc.offer_share(producer.id, consumer.id, buffer, 1).expect("offer");
    let mapped = cvm
        .gate
        .services
        .enc
        .accept_share(&mut cvm.gate.monitor, &mut cvm.hv, consumer.id, producer.id, SHARE_WINDOW)
        .expect("accept");
    let consumer_aspace = cvm.gate.services.enc.enclave(consumer.id).unwrap().aspace;
    let got = consumer_aspace
        .read_virt(&cvm.hv.machine, mapped, 28, Vmpl::Vmpl2, Cpl::Cpl3)
        .expect("consumer reads shared page");
    println!("consumer sees shared data: {:?}", String::from_utf8_lossy(&got));

    // The OS still cannot read it — sharing never widens the OS's view.
    let frame = producer.frames[(buffer - producer.base) as usize / 4096];
    let os_read = cvm.hv.machine.read(Vmpl::Vmpl3, frame * 4096, 28);
    println!("compromised kernel reads the same page -> {os_read:?}");
    assert!(os_read.is_err());

    println!("\nmulti-tenant demo complete.");
}
