//! VeilS-KCI walkthrough: kernel code integrity against rootkits.
//!
//! The §6.1 scenario: attackers inject code by overwriting kernel text
//! or loading malicious modules. VeilS-KCI enforces W⊕X in the RMP —
//! below the kernel's own page tables — and verifies module signatures
//! TOCTOU-safely in `Dom_SER`.
//!
//! Run with: `cargo run --example kernel_hardening`

use veil::prelude::*;
use veil_core::cvm::VENDOR_KEY;
use veil_os::module::ModuleImage;
use veil_snp::mem::gpa_of;
use veil_snp::perms::{Cpl, Vmpl};

fn main() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).build().expect("boot");
    println!("== VeilS-KCI active: kernel W⊕X enforced in the RMP ==");

    // 1. Direct code injection into kernel text.
    let text = cvm.gate.monitor.layout.kernel_text.start;
    let inject = cvm.hv.machine.write(Vmpl::Vmpl3, gpa_of(text), b"\x90\x90\xcc");
    println!("overwrite kernel text        -> {inject:?}");
    assert!(inject.is_err());

    // 2. Turning a data page into supervisor code.
    let data = cvm.gate.monitor.layout.kernel_data.start;
    let exec = cvm.hv.machine.check_exec(Vmpl::Vmpl3, Cpl::Cpl0, gpa_of(data));
    println!("supervisor-exec kernel data  -> {exec:?}");
    assert!(exec.is_err());

    // 3. A legitimate, vendor-signed driver loads fine (via Dom_SER).
    let driver = ModuleImage::build_signed("virtio_net", 16 * 1024, &VENDOR_KEY);
    {
        let (kernel, mut ctx) = cvm.kctx();
        kernel.load_module(&mut ctx, &driver).expect("signed module loads");
    }
    let module = &cvm.kernel.modules["virtio_net"];
    println!(
        "signed module 'virtio_net' installed across {} write-protected pages",
        module.text_gfns.len()
    );
    let patch = cvm.hv.machine.write(Vmpl::Vmpl3, gpa_of(module.text_gfns[0]), b"hook");
    println!("patch installed module text  -> {patch:?}");
    assert!(patch.is_err());

    // 4. A rootkit with a broken signature is rejected by the service.
    let mut rootkit = ModuleImage::build_signed("rootkit", 8 * 1024, &VENDOR_KEY);
    rootkit.text[0] ^= 0xff; // tampered after signing
    let refused = {
        let (kernel, mut ctx) = cvm.kctx();
        kernel.load_module(&mut ctx, &rootkit)
    };
    println!("load tampered 'rootkit'      -> {:?}", refused.err().map(|e| e.to_string()));
    assert_eq!(cvm.gate.services.kci.rejected, 1);

    // 5. The OS cannot abuse unload to strip protection from other pages.
    let victim = cvm.gate.monitor.layout.kernel_pool.start + 3;
    let strip = {
        let (_, ctx) = cvm.kctx();
        ctx.gate.request(
            ctx.hv,
            0,
            veil_os::monitor::MonRequest::KciModuleUnload { text_gfns: vec![victim] },
        )
    };
    println!("forged unload request        -> {:?}", strip.err().map(|e| e.to_string()));

    // 6. Honest unload restores the memory for reuse, scrubbed.
    {
        let (kernel, mut ctx) = cvm.kctx();
        kernel.unload_module(&mut ctx, "virtio_net").expect("unload");
    }
    println!("module unloaded; frames returned to the kernel pool");
    println!(
        "\nKCI stats: {} loads, {} unloads, {} rejected",
        cvm.gate.services.kci.loads, cvm.gate.services.kci.unloads, cvm.gate.services.kci.rejected
    );
}
