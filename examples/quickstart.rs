//! Quickstart: boot a Veil CVM, see the privilege domains in action.
//!
//! Run with: `cargo run --example quickstart`

use veil::prelude::*;
use veil_snp::mem::gpa_of;
use veil_snp::perms::Vmpl;

fn main() {
    // Boot a confidential VM with the full Veil stack: VeilMon at
    // Dom_MON, the three protected services at Dom_SER, and a commodity
    // kernel deprivileged to Dom_UNT.
    let mut cvm = CvmBuilder::new()
        .frames(4096) // 16 MiB guest
        .vcpus(2)
        .build()
        .expect("CVM boot");

    println!("== Veil CVM booted ==");
    println!("kernel runs at {}", cvm.kernel.vmpl);
    println!(
        "launch measurement: {}",
        veil_crypto::sha256::hex(&cvm.hv.machine.launch_measurement().unwrap())
    );
    println!(
        "boot stats: {} pages validated, {} RMPADJUSTs, {} replica VMSAs",
        cvm.gate.monitor.boot_stats.pages_validated,
        cvm.gate.monitor.boot_stats.rmpadjusts,
        cvm.gate.monitor.boot_stats.vmsas_created,
    );

    // The kernel works normally...
    let pid = cvm.spawn();
    let mut sys = cvm.sys(pid);
    let fd = sys.open("/tmp/hello.txt", OpenFlags::rdwr_create()).unwrap();
    sys.write(fd, b"hello from Dom_UNT").unwrap();
    println!("\nkernel served open+write normally (fd {fd})");

    // ...but the VMPL walls are real:
    let mon = cvm.gate.monitor.layout.mon_pool.start;
    let attack = cvm.hv.machine.write(Vmpl::Vmpl3, gpa_of(mon), b"attack");
    println!("OS write into VeilMon memory -> {attack:?}");
    assert!(attack.is_err());

    let hv_attack = cvm.hv.attack_read(gpa_of(mon), 16);
    println!("hypervisor read of guest memory -> {hv_attack:?}");
    assert!(hv_attack.is_err());

    // Remote attestation: only VMPL-0 software can speak for the CVM.
    let golden = cvm.hv.machine.launch_measurement().unwrap();
    let user = RemoteUser::new(cvm.hv.machine.device_verification_key(), Some(golden), &[1; 32]);
    let (report, mon_pub) = cvm.gate.monitor.begin_channel(&mut cvm.hv).unwrap();
    let channel = user.verify_and_derive(&report, &mon_pub);
    println!("\nremote user verified VeilMon's attestation: {}", channel.is_ok());
    cvm.gate.monitor.complete_channel(&mut cvm.hv, &user.public()).unwrap();
    println!("secure channel established with Dom_MON");

    println!("\nquickstart complete — see the other examples for the protected services.");
}
