//! # Veil — a protected services framework for confidential virtual machines
//!
//! Facade crate for the Veil workspace: re-exports every subsystem so that
//! examples and integration tests can use one import root. See the README
//! for the architecture overview and DESIGN.md for the full system
//! inventory.
//!
//! ```
//! use veil::prelude::*;
//!
//! let cvm = CvmBuilder::new().vcpus(2).build().expect("boot");
//! assert!(cvm.veil_enabled());
//! ```

#![forbid(unsafe_code)]

pub use veil_core as core;
pub use veil_crypto as crypto;
pub use veil_hv as hv;
pub use veil_metrics as metrics;
pub use veil_os as os;
pub use veil_sdk as sdk;
pub use veil_services as services;
pub use veil_snp as snp;
pub use veil_trace as trace;
pub use veil_workloads as workloads;

/// Common imports for examples and tests.
pub mod prelude {
    pub use veil_core::cvm::{CvmBuilder as CoreCvmBuilder, GenericCvm, NativeCvm};
    pub use veil_core::remote::{RemoteUser, SecureChannel};
    pub use veil_os::sys::{OpenFlags, Sys, Whence};
    pub use veil_services::{Cvm, CvmBuilder, VeilServices};
}
