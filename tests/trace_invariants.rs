//! Trace-invariant suite: structural properties every recorded event
//! stream must satisfy, plus the counters/stats/cycle-accounting
//! consistency the tentpole guarantees by construction.
//!
//! * every `DomainSwitch` is bracketed by a `VmgExit` (before) and a
//!   `VmEnter` (after) on the same VCPU;
//! * no recorded `RMPADJUST` grants permissions its executing VMPL did
//!   not itself hold (no escalation);
//! * folding the event stream reproduces the live counters and the
//!   hypervisor's `HvStats` exactly (zero drift);
//! * per-domain cycle attribution sums to the machine total;
//! * disabling tracing records nothing and changes no behavior.

use veil::prelude::*;
use veil::trace::{invariants, Event, EventCounters};
use veil_os::audit::{paper_ruleset, AuditMode};
use veil_sdk::{install_enclave, EnclaveBinary, EnclaveRuntime, EnclaveSys};
use veil_testkit::{prop, prop_assert, prop_assert_eq};
use veil_workloads::driver::VeilUnshieldedDriver;
use veil_workloads::http::HttpWorkload;
use veil_workloads::kvstore::UnqliteWorkload;
use veil_workloads::minidb::SqliteWorkload;
use veil_workloads::Workload;

/// Boots a traced CVM and runs a representative mixed workload: audited
/// kernel syscalls, a secure-channel handshake, and enclave-redirected
/// syscalls.
fn traced_workload_cvm() -> Cvm {
    // Metrics ride along so every invariant below also runs with the
    // registry live — and so the three-way drift test has data.
    let mut cvm =
        CvmBuilder::new().frames(4096).vcpus(1).trace(true).metrics(true).build().unwrap();
    cvm.kernel.audit.mode = AuditMode::VeilLog;
    cvm.kernel.audit.rules = paper_ruleset();

    let user = veil::crypto::DhKeyPair::from_seed(&[3; 32]);
    let (_report, _mon_pub) = cvm.gate.monitor.begin_channel(&mut cvm.hv).unwrap();
    cvm.gate.monitor.complete_channel(&mut cvm.hv, &user.public).unwrap();

    let pid = cvm.spawn();
    {
        let mut sys = cvm.sys(pid);
        let fd = sys.open("/tmp/inv", OpenFlags::rdwr_create()).unwrap();
        sys.write(fd, b"invariants").unwrap();
        sys.close(fd).unwrap();
    }

    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("inv", 2048, 0)).unwrap();
    let mut rt = EnclaveRuntime::new(handle);
    {
        let mut sys = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
        let fd = sys.open("/tmp/enc", OpenFlags::rdwr_create()).unwrap();
        sys.write(fd, b"shielded").unwrap();
        sys.close(fd).unwrap();
    }
    veil_sdk::runtime::park_enclave(&mut cvm, &mut rt).unwrap();
    cvm
}

#[test]
fn workload_trace_satisfies_structural_invariants() {
    let cvm = traced_workload_cvm();
    let records = cvm.trace_records();
    assert!(records.len() > 100, "expected a substantial stream, got {}", records.len());
    assert_eq!(cvm.hv.machine.tracer().dropped(), 0, "ring must not wrap in this test");
    if let Err(v) = invariants::check(&records) {
        panic!("trace invariant violated: {v}");
    }
}

#[test]
fn every_domain_switch_is_bracketed() {
    // Beyond invariants::check (already exercised above): count the
    // brackets directly so a checker bug cannot silently pass.
    let cvm = traced_workload_cvm();
    let records = cvm.trace_records();
    let mut switches = 0usize;
    for (i, r) in records.iter().enumerate() {
        if let Event::DomainSwitch { vcpu, to, .. } = r.event {
            switches += 1;
            let before = records[..i]
                .iter()
                .rev()
                .find(|p| matches!(p.event, Event::VmgExit { vcpu: v, .. } if v == vcpu));
            assert!(before.is_some(), "switch at seq {} has no preceding VMGEXIT", r.seq);
            let after = records[i + 1..]
                .iter()
                .find(|n| matches!(n.event, Event::VmEnter { vcpu: v, .. } if v == vcpu));
            match after {
                Some(n) => match n.event {
                    Event::VmEnter { vmpl, .. } => {
                        assert_eq!(vmpl, to, "re-entry VMPL mismatch at seq {}", r.seq)
                    }
                    _ => unreachable!(),
                },
                None => panic!("switch at seq {} has no following VMENTER", r.seq),
            }
        }
    }
    assert!(switches > 0, "workload must produce domain switches");
}

#[test]
fn no_recorded_rmpadjust_escalates() {
    let cvm = traced_workload_cvm();
    let mut seen = 0usize;
    for r in cvm.trace_records() {
        if let Event::RmpAdjust { executing, target, perms, executing_perms, .. } = r.event {
            seen += 1;
            assert!(executing < target, "RMPADJUST must target a less-privileged VMPL");
            assert_eq!(
                perms & !executing_perms,
                0,
                "seq {}: VMPL{executing} granted perms {perms:#x} beyond its own {executing_perms:#x}",
                r.seq
            );
        }
    }
    assert!(seen > 1000, "boot alone performs thousands of RMPADJUSTs, saw {seen}");
}

#[test]
fn folded_counters_equal_live_counters_and_hv_stats() {
    let cvm = traced_workload_cvm();
    let records = cvm.trace_records();
    assert_eq!(cvm.hv.machine.tracer().dropped(), 0);
    let fold = EventCounters::from_records(&records);
    assert_eq!(fold, *cvm.hv.machine.tracer().counters(), "replay fold must equal live fold");

    let stats = cvm.hv.stats();
    assert_eq!(stats.vmgexits, fold.vmgexits);
    assert_eq!(stats.domain_switches, fold.domain_switches);
    assert_eq!(stats.enclave_crossings, fold.enclave_crossings);
    assert_eq!(stats.automatic_exits, fold.automatic_exits);
    assert_eq!(stats.page_state_changes, fold.page_state_changes);
    assert_eq!(stats.io_exits, fold.io_exits);
}

#[test]
fn metrics_event_fold_never_drifts() {
    // Satellite: the registry consumes the *same* `(cycles, event)`
    // stream as the tracer (one call site in `Machine::trace_event`), so
    // its embedded fold, the live tracer fold, and a replay fold over
    // the ring must agree exactly — a regression guard against anyone
    // feeding the registry from a second, divergent stream.
    let cvm = traced_workload_cvm();
    let records = cvm.trace_records();
    assert_eq!(cvm.hv.machine.tracer().dropped(), 0);
    let replay = EventCounters::from_records(&records);
    let live = cvm.hv.machine.tracer().counters();
    let registry = cvm.metrics().event_counters();
    assert_eq!(replay, *live, "replay fold must equal live tracer fold");
    assert_eq!(registry, live, "registry fold drifted from the tracer fold");

    // The registry's per-event counters must also sum to the stream:
    // every record lands in exactly one `events_total` series.
    let events_total: u64 =
        cvm.metrics().counters().filter(|(k, _)| k.metric == "events_total").map(|(_, v)| v).sum();
    assert_eq!(events_total, records.len() as u64, "events_total must count every record once");
}

#[test]
fn domain_cycles_sum_to_machine_total() {
    let cvm = traced_workload_cvm();
    let domain = cvm.domain_cycles();
    let total: u64 = domain.iter().sum();
    assert_eq!(total, cvm.hv.machine.cycles().total());
    // The monitor did boot work; the kernel and enclave both ran.
    assert!(domain[0] > 0, "VMPL0 (monitor) cycles");
    assert!(domain[2] > 0, "VMPL2 (enclave) cycles");
    assert!(domain[3] > 0, "VMPL3 (kernel) cycles");
}

#[test]
fn disabled_tracing_records_nothing_and_changes_no_behavior() {
    let run = |trace: bool| {
        let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).trace(trace).build().unwrap();
        cvm.kernel.audit.mode = AuditMode::VeilLog;
        cvm.kernel.audit.rules = paper_ruleset();
        let pid = cvm.spawn();
        let mut sys = cvm.sys(pid);
        let fd = sys.open("/tmp/twin", OpenFlags::rdwr_create()).unwrap();
        sys.write(fd, b"twin").unwrap();
        sys.close(fd).unwrap();
        cvm
    };
    let traced = run(true);
    let silent = run(false);
    // Identical behavior: same measurement, same cycles, same stats.
    assert_eq!(traced.hv.machine.launch_measurement(), silent.hv.machine.launch_measurement());
    assert_eq!(traced.hv.machine.cycles().total(), silent.hv.machine.cycles().total());
    assert_eq!(traced.hv.stats(), silent.hv.stats());
    assert_eq!(traced.domain_cycles(), silent.domain_cycles());
    // But only the traced twin recorded anything.
    assert!(!traced.trace_records().is_empty());
    assert!(silent.trace_records().is_empty());
    assert_eq!(
        silent.trace_digest_hex(),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        "disabled tracer digests the empty stream"
    );
}

// ---- satellite 3: property test over random workload schedules ----------

#[derive(Debug, Clone)]
enum Item {
    Kv(usize),
    Http(usize),
    Db(usize),
}

#[test]
fn random_workload_schedules_satisfy_invariants() {
    let item = prop::one_of(vec![
        prop::usizes(1..6).map(Item::Kv),
        prop::usizes(1..6).map(Item::Http),
        prop::usizes(1..6).map(Item::Db),
    ]);
    let schedules = prop::vecs(item, 1..4);
    prop::check("random_workload_schedules_satisfy_invariants", 100, &schedules, |schedule| {
        let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).trace(true).build().unwrap();
        cvm.kernel.audit.mode = AuditMode::VeilLog;
        cvm.kernel.audit.rules = paper_ruleset();
        let pid = cvm.spawn();
        let mut driver = VeilUnshieldedDriver { cvm: &mut cvm, pid };
        for (i, it) in schedule.iter().enumerate() {
            let ran = match it {
                Item::Kv(n) => UnqliteWorkload { entries: *n }.run(&mut driver),
                // Distinct port per schedule slot: the kernel socket
                // table is shared, so a repeated bind would EADDRINUSE.
                Item::Http(n) => {
                    HttpWorkload { port: 8080 + i as u16, ..HttpWorkload::lighttpd(*n) }
                        .run(&mut driver)
                }
                Item::Db(n) => SqliteWorkload { rows: *n }.run(&mut driver),
            };
            prop_assert!(ran.is_ok(), "workload {it:?} failed: {:?}", ran.err());
        }
        let records = cvm.trace_records();
        prop_assert_eq!(cvm.hv.machine.tracer().dropped(), 0u64);
        if let Err(v) = invariants::check(&records) {
            return Err(format!("schedule {schedule:?}: {v}"));
        }
        prop_assert_eq!(EventCounters::from_records(&records), *cvm.hv.machine.tracer().counters());
        let total: u64 = cvm.domain_cycles().iter().sum();
        prop_assert_eq!(total, cvm.hv.machine.cycles().total());
        Ok(())
    });
}
