//! Tier-1 smoke suite for the adversarial differential fuzzer.
//!
//! The full fuzz budget runs in its own CI job; this suite keeps a
//! bounded slice of it in the tier-1 gate: the differential property
//! (machine == reference oracle, caches-on == caches-off) under the
//! testkit engine, determinism of whole fuzz runs, and — crucial for
//! trusting a fuzzer that never fires — proof that each seeded machine
//! mutation is caught *and* shrunk to a minimal sequence.

use veil_adversary::{
    run_fuzz, run_sequence, sequence_strategy, AdversaryOp, FuzzConfig, SEED_LABEL,
};
use veil_snp::perms::Vmpl;
use veil_snp::rmp::RmpMutation;
use veil_testkit::prop::check;

/// The core property, under the same engine as `tests/properties.rs`:
/// every generated attack sequence must execute identically on the real
/// machine and the reference oracle, with caches on and off. The
/// `check` name equals [`SEED_LABEL`], so a `VEIL_TEST_SEED` printed
/// here replays in the `fuzz` binary and vice versa.
#[test]
fn adversary_differential() {
    check(SEED_LABEL, 24, &sequence_strategy(60), |ops| run_sequence(&ops, None).map(|_| ()));
}

/// A bounded `run_fuzz` is green and byte-for-byte deterministic: two
/// identical runs produce identical reports (same cases, same op
/// totals, no failure).
#[test]
fn fuzz_run_is_green_and_deterministic() {
    let cfg = FuzzConfig { seeds: 10, ops: 50, seed: None, mutation: None };
    let a = run_fuzz(&cfg);
    let b = run_fuzz(&cfg);
    assert!(a.failure.is_none(), "unexpected divergence: {:?}", a.failure);
    assert_eq!(a, b, "fuzz runs from the same config must be identical");
    assert_eq!(a.cases, 10);
    assert!(a.total_ops > 0);
}

/// Replaying an explicit seed pins exactly one case and is stable.
#[test]
fn explicit_seed_replay_is_deterministic() {
    let cfg = FuzzConfig { seeds: 999, ops: 60, seed: Some(0xDEAD_BEEF_CAFE_F00D), mutation: None };
    let a = run_fuzz(&cfg);
    let b = run_fuzz(&cfg);
    assert_eq!(a.cases, 1, "an explicit seed must run exactly one case");
    assert_eq!(a, b);
}

/// Mutation self-test: with VMSA immutability skipped in the machine,
/// the fuzzer must notice the divergence from the (unmutated) oracle
/// and shrink the repro to a handful of ops. A fuzzer that cannot catch
/// a seeded hole proves nothing when it stays green.
#[test]
fn seeded_vmsa_immutability_bug_is_caught_and_shrunk() {
    let cfg = FuzzConfig {
        seeds: 40,
        ops: 60,
        seed: None,
        mutation: Some(RmpMutation::SkipVmsaImmutable),
    };
    let report = run_fuzz(&cfg);
    let failure = report.failure.expect("seeded VMSA-immutability bug must be caught");
    assert!(
        failure.shrunk.len() <= 10,
        "repro must shrink to <= 10 ops, got {} ({:?})",
        failure.shrunk.len(),
        failure.shrunk
    );
    assert!(!failure.shrunk.is_empty());
    // The shrunk repro must still reproduce on its own.
    assert!(run_sequence(&failure.shrunk, cfg.mutation).is_err());
    // ...and be harmless on the unmutated machine.
    assert!(run_sequence(&failure.shrunk, None).is_ok());
}

/// Handcrafted escalation: with the self-escalation check disabled, a
/// VMPL-1 RMPADJUST granting VMPL-3 more than VMPL-1 holds must diverge
/// from the oracle on the spot.
#[test]
fn seeded_perm_escalation_bug_is_caught_by_handcrafted_sequence() {
    let gfn = 20; // pool page, granted all perms to every VMPL in the prologue
    let ops = [
        // VMPL-0 strips VMPL-1 down to read-only...
        AdversaryOp::Rmpadjust { executing: Vmpl::Vmpl0, gfn, target: Vmpl::Vmpl1, perms: 0b0001 },
        // ...then VMPL-1 tries to hand VMPL-3 read+write it does not hold.
        AdversaryOp::Rmpadjust { executing: Vmpl::Vmpl1, gfn, target: Vmpl::Vmpl3, perms: 0b0011 },
    ];
    assert!(run_sequence(&ops, None).is_ok(), "sequence must be legal on the real machine");
    let err = run_sequence(&ops, Some(RmpMutation::AllowPermEscalation))
        .expect_err("escalation mutation must diverge from the oracle");
    assert!(err.contains("Rmpadjust"), "divergence should implicate RMPADJUST: {err}");
}

/// Handcrafted double-validate: re-validating an already-validated page
/// must fail with `ValidationMismatch`; a machine that silently accepts
/// it diverges immediately.
#[test]
fn seeded_double_validate_bug_is_caught_by_handcrafted_sequence() {
    let ops = [AdversaryOp::Pvalidate { vmpl: Vmpl::Vmpl0, gfn: 20, validate: true }];
    assert!(run_sequence(&ops, None).is_ok());
    let err = run_sequence(&ops, Some(RmpMutation::AllowDoubleValidate))
        .expect_err("double-validate mutation must diverge from the oracle");
    assert!(err.contains("Pvalidate"), "divergence should implicate PVALIDATE: {err}");
}
