//! Regression guards over the evaluation harness: the paper's *shapes*
//! must keep holding as the code evolves. Small scales keep this fast.

use veil_bench::*;

#[test]
fn boot_time_shape() {
    let r = boot_time(2048);
    assert!(r.veil_cycles > r.native_cycles, "Veil boot must cost more");
    assert!(r.rmpadjust_share > 0.70, "paper: >70% in RMPADJUST, got {}", r.rmpadjust_share);
    assert!(
        (1.0..4.0).contains(&r.extrapolated_2gb_seconds),
        "paper: ~2 s on 2 GB, got {:.2} s",
        r.extrapolated_2gb_seconds
    );
    let pct = r.increase_over_full_boot();
    assert!((0.05..0.30).contains(&pct), "paper: +13%, got {pct:.2}");
}

#[test]
fn domain_switch_matches_paper_constant() {
    let r = domain_switch(10_000);
    assert_eq!(r.switch_cycles, 7135, "paper-measured switch cost");
    assert_eq!(r.vmcall_cycles, 1100);
}

#[test]
fn background_impact_is_negligible() {
    for row in background(1) {
        assert!(
            row.overhead() < 0.02,
            "paper: <2% background impact, {} got {:.3}",
            row.program,
            row.overhead()
        );
        assert!(row.checksum_match, "{} output must match", row.program);
    }
}

#[test]
fn fig4_slowdowns_in_paper_band() {
    for row in fig4(50) {
        let s = row.slowdown();
        assert!(
            (3.0..8.0).contains(&s),
            "{}: slowdown {s:.1}x outside the paper-shaped band",
            row.name
        );
    }
}

#[test]
fn fig4_printf_is_worst_and_read_write_best() {
    let rows = fig4(50);
    let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().slowdown();
    // Cheap syscalls amortize the switch worst (paper: printf at 7.1x,
    // read/write at the 3.3-3.5x low end).
    assert!(get("printf") > get("read"));
    assert!(get("printf") > get("write"));
    assert!(get("socket") > get("read"));
}

#[test]
fn fig5_overheads_match_paper_shape() {
    let rows = fig5(1);
    let get = |n: &str| rows.iter().find(|r| r.program == n).unwrap();
    for r in &rows {
        assert!(r.checksum_match, "{}: shielded output must match native", r.program);
        let got = r.overhead();
        assert!(
            (got - r.paper_overhead).abs() < 0.12,
            "{}: overhead {got:.3} vs paper {:.3}",
            r.program,
            r.paper_overhead
        );
    }
    // Orderings the paper highlights: SQLite worst, GZip best.
    assert!(get("SQLite").overhead() > get("UnQlite").overhead());
    assert!(get("GZip").overhead() < 0.10);
    // Lighttpd is the case where syscall-redirect (copies) matters most.
    let redirect_share =
        |r: &EnclaveAppRow| r.redirect_points() / (r.redirect_points() + r.exit_points());
    assert!(
        redirect_share(get("Lighttpd")) > redirect_share(get("SQLite")),
        "paper: lighttpd's large copies shift cost to syscall-redirect"
    );
}

#[test]
fn fig6_veil_log_costs_more_than_kaudit_but_bounded() {
    for r in fig6(1) {
        assert!(
            r.veil_overhead() >= r.kaudit_overhead(),
            "{}: VeilS-LOG must cost at least kaudit",
            r.program
        );
        assert!(r.veil_overhead() < 0.45, "{}: VeilS-LOG overhead bounded", r.program);
        if r.records > 50 {
            assert!(r.log_rate_per_s > 500.0, "{}: plausible log rate", r.program);
        }
    }
    // Memcached (highest log rate) pays the most, as in the paper.
    let rows = fig6(1);
    let memcached = rows.iter().find(|r| r.program == "Memcached").unwrap();
    for r in &rows {
        assert!(memcached.veil_overhead() >= r.veil_overhead() - 1e-9);
    }
}

#[test]
fn cs1_module_costs_match_paper() {
    let r = cs1(25);
    assert!(
        (35_000..90_000).contains(&r.load_delta()),
        "paper: ~55k extra cycles on load, got {}",
        r.load_delta()
    );
    assert!(
        (0.02..0.09).contains(&r.load_increase()),
        "paper: +5.7% load, got {:.3}",
        r.load_increase()
    );
    assert!(
        (0.02..0.09).contains(&r.unload_increase()),
        "paper: +4.2% unload, got {:.3}",
        r.unload_increase()
    );
}

#[test]
fn ablation_exitless_monotone() {
    let rows = ablation_exitless(150);
    for pair in rows.windows(2) {
        assert!(
            pair[1].overhead <= pair[0].overhead,
            "batching must monotonically reduce overhead"
        );
    }
    assert!(rows.last().unwrap().overhead < rows[0].overhead / 4.0, "large batches pay off");
}
