//! Exhaustive `#NPF` cause coverage.
//!
//! Every [`NpfCause`] variant must be reachable from safe, public API
//! calls — no test-only back doors, no constructed faults. The match in
//! [`witness`] is deliberately wildcard-free: adding a variant to
//! `NpfCause` breaks this file at compile time until a reproduction is
//! written for it, and `NpfCause::ALL` keeps the loop honest at run
//! time.

use veil_snp::fault::{NestedPageFault, NpfCause, SnpError};
use veil_snp::machine::{Machine, MachineConfig};
use veil_snp::perms::{Access, Cpl, Vmpl, VmplPerms};

const FRAMES: usize = 16;

fn machine() -> Machine {
    Machine::new(MachineConfig { frames: FRAMES, ..Default::default() })
}

/// Produces, through public API calls only, an operation whose result
/// is an `#NPF` with exactly `cause`, and returns the observed fault.
fn witness(cause: NpfCause) -> NestedPageFault {
    let mut m = machine();
    let result = match cause {
        NpfCause::NotAssigned => {
            // A page taken private is, by definition, no longer
            // hypervisor-accessible; the host write faults NotAssigned.
            m.rmp_assign(1).unwrap();
            m.hv_write(Machine::gpa(1), b"host probe")
        }
        NpfCause::NotValidated => {
            // Assigned but never PVALIDATEd: even VMPL-0 cannot touch
            // it — the guard against pre-validation remap attacks.
            m.rmp_assign(1).unwrap();
            m.read(Vmpl::Vmpl0, Machine::gpa(1), 8).map(|_| ())
        }
        NpfCause::VmplDenied => {
            // Validated, but VMPL-3 was granted read-only; its write
            // trips the VMPL permission mask.
            m.rmp_assign(1).unwrap();
            m.pvalidate(Vmpl::Vmpl0, 1, true).unwrap();
            m.rmpadjust(Vmpl::Vmpl0, 1, Vmpl::Vmpl3, VmplPerms::READ).unwrap();
            m.write(Vmpl::Vmpl3, Machine::gpa(1), b"denied")
        }
        NpfCause::VmsaImmutable => {
            // A live VMSA page is immutable to software at any VMPL —
            // even VMPL-0, even with full permissions granted.
            m.rmp_assign(1).unwrap();
            m.pvalidate(Vmpl::Vmpl0, 1, true).unwrap();
            m.vmsa_create(Vmpl::Vmpl0, 1, 0, Vmpl::Vmpl1, Cpl::Cpl0).unwrap();
            m.read(Vmpl::Vmpl0, Machine::gpa(1), 8).map(|_| ())
        }
        NpfCause::OutOfRange => {
            // One past the last frame: the fault names the gfn, not
            // merely "bad address".
            m.read(Vmpl::Vmpl0, Machine::gpa(FRAMES as u64), 8).map(|_| ())
        }
    };
    match result {
        Err(SnpError::Npf(npf)) => npf,
        other => panic!("{cause:?} witness produced {other:?} instead of an #NPF"),
    }
}

#[test]
fn every_npf_cause_is_reachable_from_safe_api() {
    for cause in NpfCause::ALL {
        let npf = witness(cause);
        assert_eq!(npf.cause, cause, "witness for {cause:?} faulted with {:?}", npf.cause);
    }
}

/// The witnesses pin not just the cause but the whole fault payload, so
/// a refactor cannot silently change which VMPL/access/gfn is blamed.
#[test]
fn npf_payloads_blame_the_right_actor() {
    let not_assigned = witness(NpfCause::NotAssigned);
    assert_eq!(
        not_assigned,
        NestedPageFault {
            gfn: 1,
            vmpl: Vmpl::Vmpl0,
            access: Access::Write,
            cause: NpfCause::NotAssigned
        }
    );

    let denied = witness(NpfCause::VmplDenied);
    assert_eq!(denied.vmpl, Vmpl::Vmpl3);
    assert_eq!(denied.access, Access::Write);

    let vmsa = witness(NpfCause::VmsaImmutable);
    assert_eq!(vmsa.vmpl, Vmpl::Vmpl0, "immutability must bind even for VMPL-0");

    let oor = witness(NpfCause::OutOfRange);
    assert_eq!(oor.gfn, FRAMES as u64);
}
