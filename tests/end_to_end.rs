//! Whole-system integration: all three protected services active at once
//! in one CVM, with workloads running natively and shielded.

use veil::prelude::*;
use veil_core::cvm::VENDOR_KEY;
use veil_os::audit::AuditMode;
use veil_os::module::ModuleImage;
use veil_sdk::{install_enclave, remove_enclave, EnclaveBinary, EnclaveRuntime, EnclaveSys};
use veil_workloads::driver::{EnclaveDriver, VeilUnshieldedDriver};
use veil_workloads::minidb::SqliteWorkload;
use veil_workloads::Workload;

#[test]
fn all_services_coexist_in_one_cvm() {
    let mut cvm = CvmBuilder::new().frames(8192).vcpus(2).log_frames(256).build().unwrap();

    // 1. VeilS-LOG: audit everything the workloads do.
    cvm.kernel.audit.mode = AuditMode::VeilLog;
    cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();

    // 2. VeilS-KCI: load a driver module.
    let image = ModuleImage::build_signed("e2e_driver", 8192, &VENDOR_KEY);
    {
        let (kernel, mut ctx) = cvm.kctx();
        kernel.load_module(&mut ctx, &image).unwrap();
    }

    // 3. VeilS-ENC: run the SQLite workload shielded...
    let pid = cvm.spawn();
    let handle = install_enclave(
        &mut cvm,
        pid,
        &EnclaveBinary::build("e2e-db", 8192, 4096).with_heap_pages(16),
    )
    .unwrap();
    let mut rt = EnclaveRuntime::new(handle.clone());
    let shielded_stats = {
        let mut d = EnclaveDriver { cvm: &mut cvm, rt: &mut rt };
        SqliteWorkload { rows: 150 }.run(&mut d).unwrap()
    };

    // ...and the same workload natively in the same CVM.
    let native_pid = cvm.spawn();
    // (fresh DB files so the runs do not collide)
    {
        let mut sys = cvm.sys(native_pid);
        sys.unlink("/data/test.db").ok();
        sys.unlink("/data/test.db-wal").ok();
    }
    let native_stats = {
        let mut d = VeilUnshieldedDriver { cvm: &mut cvm, pid: native_pid };
        SqliteWorkload { rows: 150 }.run(&mut d).unwrap()
    };

    // Functional equivalence between shielded and native execution.
    assert_eq!(shielded_stats.checksum, native_stats.checksum);
    assert_eq!(shielded_stats.ops, 150);

    // The audit trail captured both runs into protected storage.
    assert!(cvm.gate.services.log.record_count() > 300, "audited syscalls from both runs");
    assert_eq!(cvm.kernel.audit_failures, 0);

    // Module still protected, enclave still intact, CVM healthy.
    assert_eq!(cvm.gate.services.kci.installed_count(), 1);
    assert_eq!(cvm.gate.services.enc.count(), 1);
    assert!(cvm.hv.machine.halted().is_none());

    // Tear down the enclave; the CVM keeps running.
    remove_enclave(&mut cvm, &handle).unwrap();
    assert_eq!(cvm.gate.services.enc.count(), 0);
    let mut sys = cvm.sys(native_pid);
    assert!(sys.open("/tmp/after", OpenFlags::rdwr_create()).is_ok());
}

#[test]
fn log_retrieval_after_full_run() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).log_frames(64).build().unwrap();
    cvm.kernel.audit.mode = AuditMode::VeilLog;
    cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();

    // Remote user establishes the attested channel with VeilMon.
    let golden = cvm.hv.machine.launch_measurement().unwrap();
    let user = RemoteUser::new(cvm.hv.machine.device_verification_key(), Some(golden), &[7; 32]);
    let (report, mon_pub) = cvm.gate.monitor.begin_channel(&mut cvm.hv).unwrap();
    let mut user_chan = user.verify_and_derive(&report, &mon_pub).unwrap();
    cvm.gate.monitor.complete_channel(&mut cvm.hv, &user.public()).unwrap();
    let mut svc_chan = SecureChannel::new(cvm.gate.monitor.channel_key().unwrap());

    // Generate audited activity.
    let pid = cvm.spawn();
    {
        let mut sys = cvm.sys(pid);
        for i in 0..20 {
            let fd = sys.open(&format!("/tmp/f{i}"), OpenFlags::rdwr_create()).unwrap();
            sys.write(fd, b"payload").unwrap();
            sys.close(fd).unwrap();
        }
    }
    let stored = cvm.gate.services.log.record_count();
    assert_eq!(stored, 60, "open+write+close x20");

    // Retrieve over the channel; the log is pruned afterwards.
    let cmd = user_chan.seal(b"retrieve-and-prune");
    let sealed_records =
        cvm.gate.services.log.retrieve_for_user(&mut cvm.hv, &mut svc_chan, &cmd).unwrap();
    assert_eq!(sealed_records.len(), 60);
    let first = user_chan.open(&sealed_records[0]).unwrap();
    let parsed = veil_os::audit::AuditRecord::from_bytes(&first).unwrap();
    assert_eq!(parsed.sysno, veil_os::syscall::Sysno::Open);
    assert_eq!(cvm.gate.services.log.record_count(), 0);
}

#[test]
fn multi_vcpu_cvm_with_hotplug() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(2).build().unwrap();
    // Hotplug a third VCPU through the §5.3 delegation.
    {
        let (kernel, mut ctx) = cvm.kctx();
        kernel.hotplug_vcpu(&mut ctx, 2).unwrap();
    }
    let svm = cvm.hv.vcpu(2).expect("vcpu 2 exists");
    assert_eq!(svm.domain_vmsas.len(), 3, "UNT + MON + SER replicas");
    // Memory hotplug through the page-state-change + pvalidate delegation.
    let fresh = cvm.gate.monitor.layout.shared.start + 12;
    let before = cvm.kernel.frames.available();
    {
        let (kernel, mut ctx) = cvm.kctx();
        kernel.accept_page(&mut ctx, fresh).unwrap();
    }
    assert_eq!(cvm.kernel.frames.available(), before + 1);
}

#[test]
fn enclave_full_lifecycle_with_syscall_mix() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).build().unwrap();
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("mix", 4096, 2048)).unwrap();
    let mut rt = EnclaveRuntime::new(handle.clone());
    {
        let mut sys = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
        // A little of everything the SDK supports.
        sys.mkdir("/tmp/encdir").unwrap();
        let fd = sys.open("/tmp/encdir/file", OpenFlags::rdwr_create()).unwrap();
        sys.write(fd, b"0123456789").unwrap();
        sys.lseek(fd, 0, Whence::Set).unwrap();
        let mut buf = [0u8; 10];
        sys.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"0123456789");
        sys.rename("/tmp/encdir/file", "/tmp/encdir/file2").unwrap();
        assert_eq!(sys.stat("/tmp/encdir/file2").unwrap().size, 10);
        let (a, b) = sys.socketpair().unwrap();
        sys.send(a, b"enclave net").unwrap();
        let mut nb = [0u8; 11];
        sys.recv(b, &mut nb).unwrap();
        assert_eq!(&nb, b"enclave net");
        let addr = sys.mmap(8192).unwrap();
        sys.mem_write(addr, b"shared scratch").unwrap();
        sys.munmap(addr, 8192).unwrap();
        for fd in [fd, a, b] {
            sys.close(fd).unwrap();
        }
        sys.deactivate().unwrap();
    }
    assert!(rt.stats.syscalls >= 14);
    assert!(!rt.stats.killed);
    remove_enclave(&mut cvm, &handle).unwrap();
}

#[test]
fn gate_requests_work_from_every_vcpu() {
    // Regression: each VCPU needs its own kernel GHCB registered at boot,
    // or monitor requests from secondary VCPUs would wedge the CVM.
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(3).build().unwrap();
    for vcpu in 0..3u32 {
        let gfn = cvm.gate.monitor.layout.shared.start + 16 + vcpu as u64;
        cvm.hv.machine.rmp_assign(gfn).unwrap();
        let ctx = veil_os::kernel::KernelCtx { hv: &mut cvm.hv, gate: &mut cvm.gate, vcpu };
        ctx.gate
            .request(ctx.hv, vcpu, veil_os::monitor::MonRequest::Pvalidate { gfn, validate: true })
            .unwrap_or_else(|e| panic!("vcpu {vcpu}: {e}"));
        // Each VCPU ended back in its kernel domain.
        assert_eq!(cvm.hv.vcpu(vcpu).unwrap().current_vmpl, veil_snp::perms::Vmpl::Vmpl3);
    }
    assert!(cvm.hv.machine.halted().is_none());
}
