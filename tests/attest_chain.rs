//! The hostile-derivation test battery for the attestation chain
//! (DESIGN.md §15): one test per tamper point asserting the *exact*
//! verification error, property tests over the VCEK derivation, and the
//! golden-pinned report bytes + attested-workload trace digest.
//!
//! The tamper battery is the paper's VCEK-seed threat model made
//! executable: every way an attacker can cut a corner in the
//! chip-seed → VCEK → attestation-key chain must be *named* by the
//! verifier, not just rejected — aliased errors would let distinct
//! attacks hide behind one another.

use std::path::Path;

use veil::prelude::*;
use veil_crypto::sha256::hex;
use veil_os::monitor::{MonRequest, MonResponse, MonitorChannel};
use veil_snp::machine::MachineConfig;
use veil_snp::perms::Vmpl;
use veil_snp::vcek::{
    self, ChainReport, ChainVerifier, DeriveStage, Tamper, TcbVersion, VerifyError, REPORT_LEN,
};
use veil_testkit::golden;
use veil_testkit::prop::{bytes, check, ints, tuple2, tuple3, Strategy};
use veil_testkit::{prop_assert, prop_assert_eq};
use veil_workloads::driver::VeilUnshieldedDriver;
use veil_workloads::http::HttpWorkload;
use veil_workloads::Workload;

/// Challenge fixture shared with `verify self-test` and the committed
/// golden (`tests/goldens/attest_report.hex`).
const GOLDEN_NONCE: [u8; 32] = [0x5a; 32];
/// Requester binding data of the golden fixture report.
const GOLDEN_REPORT_DATA: [u8; 64] = [0x6b; 64];

fn golden_path(file: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(file)
}

/// Trust material every tamper test verifies against: a chip seed, a
/// trusted-TCB window `[1, 8]`, and an expected measurement.
fn fixture() -> ([u8; 32], [u8; 32], ChainVerifier) {
    let seed = vcek::chip_seed(&[0x7e; 32]);
    let measurement = [0x2c; 32];
    let verifier = ChainVerifier::with_kds(&seed, TcbVersion(1), TcbVersion(8), measurement);
    (seed, measurement, verifier)
}

fn hostile(seed: &[u8; 32], measurement: [u8; 32], tamper: Tamper) -> ChainReport {
    ChainReport::issue_tampered(
        tamper,
        seed,
        TcbVersion(2),
        measurement,
        GOLDEN_NONCE,
        GOLDEN_REPORT_DATA,
    )
}

// ---- tamper battery: one test per tamper point, exact errors ----------

/// Wrong seed: the whole chain is internally consistent but rooted in
/// material that is not this device's — caught at the *first* DICE
/// stage, the VCEK certificate.
#[test]
fn wrong_seed_is_named_as_vcek_derivation_mismatch() {
    let (seed, measurement, mut verifier) = fixture();
    let report = hostile(&seed, measurement, Tamper::WrongSeed);
    assert_eq!(
        verifier.verify(&report, &GOLDEN_NONCE),
        Err(VerifyError::DerivationMismatch { stage: DeriveStage::Vcek })
    );
}

/// Stale TCB: a correctly derived chain for a rolled-back firmware
/// version. Policy must name it as stale (with both versions) rather
/// than letting it surface as a generic derivation failure.
#[test]
fn stale_tcb_is_named_with_claimed_and_minimum_versions() {
    let (seed, measurement, mut verifier) = fixture();
    let report = hostile(&seed, measurement, Tamper::StaleTcb(TcbVersion(0)));
    assert_eq!(
        verifier.verify(&report, &GOLDEN_NONCE),
        Err(VerifyError::StaleTcb { claimed: TcbVersion(0), minimum: TcbVersion(1) })
    );
}

/// A TCB above the trusted window is unknown, not stale: the verifier
/// holds no KDS certificate for it.
#[test]
fn unknown_tcb_is_distinguished_from_stale() {
    let (seed, measurement, mut verifier) = fixture();
    let report = ChainReport::issue(
        &seed,
        TcbVersion(9),
        measurement,
        Vmpl::Vmpl0,
        GOLDEN_NONCE,
        GOLDEN_REPORT_DATA,
    );
    assert_eq!(
        verifier.verify(&report, &GOLDEN_NONCE),
        Err(VerifyError::UnknownTcb(TcbVersion(9)))
    );
}

/// Skipped HKDF stage: the attestation key is minted straight from the
/// chip seed. The VCEK certificate still checks out (the issuer computed
/// it honestly), so the mismatch must surface at the *second* stage.
#[test]
fn skipped_hkdf_stage_is_named_as_attestation_key_mismatch() {
    let (seed, measurement, mut verifier) = fixture();
    let report = hostile(&seed, measurement, Tamper::SkipVcekStage);
    assert_eq!(
        verifier.verify(&report, &GOLDEN_NONCE),
        Err(VerifyError::DerivationMismatch { stage: DeriveStage::AttestationKey })
    );
}

/// A flipped signature bit fails MAC verification — after the chain
/// itself checked out.
#[test]
fn flipped_signature_is_named_as_bad_signature() {
    let (seed, measurement, mut verifier) = fixture();
    let report = hostile(&seed, measurement, Tamper::FlipSignature);
    assert_eq!(verifier.verify(&report, &GOLDEN_NONCE), Err(VerifyError::BadSignature));
}

/// A mutated launch measurement re-keys the attestation key, so the
/// report self-signs consistently — only the verifier's out-of-band
/// expected measurement catches it.
#[test]
fn mutated_measurement_is_named_as_wrong_measurement() {
    let (seed, measurement, mut verifier) = fixture();
    let report = hostile(&seed, measurement, Tamper::MutateMeasurement);
    assert_eq!(verifier.verify(&report, &GOLDEN_NONCE), Err(VerifyError::WrongMeasurement));
}

/// Evidence claiming to come from a lower privilege level than VMPL-0
/// must be refused even when every key checks out.
#[test]
fn lower_vmpl_claim_is_named_as_wrong_vmpl() {
    let (seed, measurement, mut verifier) = fixture();
    let report = hostile(&seed, measurement, Tamper::ClaimVmpl(Vmpl::Vmpl3));
    assert_eq!(verifier.verify(&report, &GOLDEN_NONCE), Err(VerifyError::WrongVmpl(Vmpl::Vmpl3)));
}

/// The challenge must be echoed: an otherwise honest report answering a
/// different nonce is not fresh.
#[test]
fn wrong_nonce_is_named_as_nonce_mismatch() {
    let (seed, measurement, mut verifier) = fixture();
    let report = ChainReport::issue(
        &seed,
        TcbVersion(2),
        measurement,
        Vmpl::Vmpl0,
        [0x99; 32],
        GOLDEN_REPORT_DATA,
    );
    assert_eq!(verifier.verify(&report, &GOLDEN_NONCE), Err(VerifyError::NonceMismatch));
}

/// Replay: the same honest report is accepted once and refused on
/// re-presentation.
#[test]
fn replayed_report_is_refused_on_second_presentation() {
    let (seed, measurement, mut verifier) = fixture();
    let report = ChainReport::issue(
        &seed,
        TcbVersion(2),
        measurement,
        Vmpl::Vmpl0,
        GOLDEN_NONCE,
        GOLDEN_REPORT_DATA,
    );
    assert_eq!(verifier.verify(&report, &GOLDEN_NONCE), Ok(()));
    assert_eq!(verifier.verify(&report, &GOLDEN_NONCE), Err(VerifyError::Replayed));
}

/// Truncated, padded, or wrong-magic bytes are malformed — before any
/// cryptographic checks run.
#[test]
fn malformed_bytes_are_rejected_before_any_crypto() {
    let (seed, measurement, mut verifier) = fixture();
    let report = ChainReport::issue(
        &seed,
        TcbVersion(2),
        measurement,
        Vmpl::Vmpl0,
        GOLDEN_NONCE,
        GOLDEN_REPORT_DATA,
    );
    let good = report.to_bytes();
    assert_eq!(good.len(), REPORT_LEN);
    assert_eq!(
        verifier.verify_bytes(&good[..REPORT_LEN - 1], &GOLDEN_NONCE),
        Err(VerifyError::Malformed)
    );
    let mut padded = good.clone();
    padded.push(0);
    assert_eq!(verifier.verify_bytes(&padded, &GOLDEN_NONCE), Err(VerifyError::Malformed));
    let mut bad_magic = good;
    bad_magic[0] ^= 0xff;
    assert_eq!(verifier.verify_bytes(&bad_magic, &GOLDEN_NONCE), Err(VerifyError::Malformed));
}

// ---- property tests over the derivation -------------------------------

fn seeds() -> Strategy<[u8; 32]> {
    bytes(32..33).map(|v| <[u8; 32]>::try_from(v).expect("32 bytes"))
}

/// The chain is a pure function of (seed, TCB, measurement): deriving
/// twice — keys or whole serialized reports — is bit-identical.
#[test]
fn derivation_is_deterministic_in_seed_tcb_and_measurement() {
    let strategy = tuple3(seeds(), ints(0u32..16), seeds());
    check("attest_derivation_deterministic", 64, &strategy, |(seed, tcb, measurement)| {
        let tcb = TcbVersion(tcb);
        let vcek = vcek::derive_vcek(&seed, tcb);
        prop_assert_eq!(vcek, vcek::derive_vcek(&seed, tcb));
        let ak = vcek::derive_attestation_key(&vcek, &measurement);
        prop_assert_eq!(ak, vcek::derive_attestation_key(&vcek, &measurement));
        let issue = || {
            ChainReport::issue(
                &seed,
                tcb,
                measurement,
                Vmpl::Vmpl0,
                GOLDEN_NONCE,
                GOLDEN_REPORT_DATA,
            )
            .to_bytes()
        };
        prop_assert_eq!(issue(), issue());
        Ok(())
    });
}

/// Distinct inputs never collide: a different seed, TCB, or measurement
/// always produces a different key at the stage that consumes it.
#[test]
fn distinct_inputs_never_collide() {
    let strategy = tuple3(
        tuple2(seeds(), seeds()),
        tuple2(ints(0u32..16), ints(0u32..16)),
        tuple2(seeds(), seeds()),
    );
    check("attest_no_collisions", 64, &strategy, |((s1, s2), (t1, t2), (m1, m2))| {
        if s1 != s2 {
            prop_assert!(
                vcek::derive_vcek(&s1, TcbVersion(t1)) != vcek::derive_vcek(&s2, TcbVersion(t1))
            );
        }
        if t1 != t2 {
            prop_assert!(
                vcek::derive_vcek(&s1, TcbVersion(t1)) != vcek::derive_vcek(&s1, TcbVersion(t2))
            );
        }
        let vcek = vcek::derive_vcek(&s1, TcbVersion(t1));
        if m1 != m2 {
            prop_assert!(
                vcek::derive_attestation_key(&vcek, &m1)
                    != vcek::derive_attestation_key(&vcek, &m2)
            );
        }
        // The two DICE stages never alias each other's output.
        prop_assert!(vcek != vcek::derive_attestation_key(&vcek, &m1));
        Ok(())
    });
}

/// verify ∘ issue round-trips for every honest input inside the trusted
/// window — through the struct path and the serialized-bytes path.
#[test]
fn verify_issue_round_trips_for_honest_inputs() {
    let strategy = tuple3(seeds(), ints(1u32..9), tuple2(seeds(), seeds()));
    check("attest_round_trip", 64, &strategy, |(seed, tcb, (measurement, nonce))| {
        let report = ChainReport::issue(
            &seed,
            TcbVersion(tcb),
            measurement,
            Vmpl::Vmpl0,
            nonce,
            GOLDEN_REPORT_DATA,
        );
        let mut verifier =
            ChainVerifier::with_kds(&seed, TcbVersion(1), TcbVersion(8), measurement);
        prop_assert_eq!(verifier.verify(&report, &nonce), Ok(()));
        let bytes = report.to_bytes();
        let decoded = ChainReport::from_bytes(&bytes).expect("round-trip decode");
        prop_assert_eq!(decoded.to_bytes(), bytes.clone());
        let mut verifier =
            ChainVerifier::with_kds(&seed, TcbVersion(1), TcbVersion(8), measurement);
        prop_assert_eq!(verifier.verify_bytes(&bytes, &nonce), Ok(()));
        Ok(())
    });
}

// ---- golden pins -------------------------------------------------------

/// The attestation report served over the gate for the golden challenge
/// is pinned byte-for-byte (`VEIL_REGEN_GOLDEN=1` regenerates after a
/// reviewed chain change). `verify self-test` checks the same file from
/// the CLI side.
#[test]
fn golden_attest_report_bytes_are_pinned() {
    let mut cvm = CvmBuilder::new().frames(2048).attest(true).build().unwrap();
    let resp = cvm
        .gate
        .request(
            &mut cvm.hv,
            0,
            MonRequest::AttestReport { nonce: GOLDEN_NONCE, report_data: GOLDEN_REPORT_DATA },
        )
        .unwrap();
    let MonResponse::Bytes(bytes) = resp else { panic!("expected report bytes, got {resp:?}") };

    // Before pinning: the live report verifies against KDS-style trust
    // material derived from the machine's device seed.
    let device_key_seed = MachineConfig::default().device_key_seed;
    let seed = vcek::chip_seed(&device_key_seed);
    let measurement = cvm.hv.machine.launch_measurement().expect("booted");
    let mut verifier = ChainVerifier::with_kds(&seed, TcbVersion(0), TcbVersion(8), measurement);
    verifier.verify_bytes(&bytes, &GOLDEN_NONCE).expect("live report must verify");

    golden::assert_matches(
        "attestation report bytes",
        &golden_path("attest_report.hex"),
        &format!("{}\n", hex(&bytes)),
    );
}

/// The attested twin of the batched-http protocol pin: with the
/// firmware measurement stage armed, the whole-run trace digest is (a)
/// pinned and (b) *identical* to the plain `batched_http` golden —
/// measured boot is a pre-boot computation and must not perturb the
/// runtime protocol by a single event.
#[test]
fn golden_attested_http_trace_digest() {
    let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).batch(true).attest(true).build().unwrap();
    cvm.kernel.audit.mode = veil_os::audit::AuditMode::VeilLog;
    cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();
    cvm.hv.set_trace(true);
    let pid = cvm.spawn();
    {
        let mut driver = VeilUnshieldedDriver { cvm: &mut cvm, pid };
        HttpWorkload::nginx(10).run(&mut driver).unwrap();
    }
    cvm.flush_gate().unwrap();
    assert_eq!(cvm.gate.deferred_errors(), 0);
    let digest = cvm.trace_digest_hex();

    golden::assert_matches(
        "attested http trace digest",
        &golden_path("attested_http.digest"),
        &format!("{digest}\n"),
    );
    if !golden::regen_requested() {
        let plain = std::fs::read_to_string(golden_path("batched_http.digest"))
            .expect("batched_http.digest golden");
        assert_eq!(
            digest,
            plain.trim(),
            "the firmware stage perturbed the runtime trace — measured boot must be free"
        );
    }
}
