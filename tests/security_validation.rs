//! §8.3 experimental security validation — the paper's two executed
//! attacks, reproduced end to end.
//!
//! "The first attack tried to overwrite VeilMon page table entries...
//! When we tried to modify the page tables from the operating system, the
//! CVM halted with continuous nested page faults (#NPFs)."
//!
//! "The second attack tried to overwrite a kernel module's text region
//! after VeilS-KCI was activated... On overwrite attempt, the CVM halted
//! with continuous #NPFs again."

use veil::prelude::*;
use veil_core::cvm::VENDOR_KEY;
use veil_os::module::ModuleImage;
use veil_sdk::{install_enclave, EnclaveBinary};
use veil_snp::fault::{HaltReason, SnpError};
use veil_snp::machine::Machine;
use veil_snp::mem::gpa_of;
use veil_snp::perms::{Cpl, Vmpl};
use veil_snp::pt::PteFlags;

fn cvm() -> Cvm {
    CvmBuilder::new().frames(4096).vcpus(1).build().expect("boot")
}

/// Drives the raw fault into the paper's observed outcome: the kernel
/// cannot make progress past the #NPF, so the CVM halts.
fn retry_until_halt(cvm: &mut Cvm, mut attack: impl FnMut(&mut Cvm) -> Result<(), SnpError>) {
    for _ in 0..3 {
        match attack(cvm) {
            Err(SnpError::Npf(npf)) => {
                // The fault re-occurs on every retry: continuous #NPFs.
                cvm.hv.machine.halt(HaltReason::NestedPageFault(npf));
            }
            Err(_) => {}
            Ok(()) => panic!("attack must not succeed"),
        }
    }
}

/// §8.3 attack 1: overwrite protected page-table entries from the OS.
#[test]
fn attack1_page_table_overwrite_halts_with_npf() {
    let mut cvm = cvm();
    // Set up an enclave whose page tables VeilS-ENC cloned into
    // protected memory — exactly the monitor-held tables the paper's
    // attack targeted (mapped into the OS address space).
    let pid = cvm.spawn();
    let handle =
        install_enclave(&mut cvm, pid, &EnclaveBinary::build("pt-victim", 2048, 0)).unwrap();
    let clone = cvm.gate.services.enc.enclave(handle.id).unwrap().aspace;
    let pt_frames = clone.table_frames(&cvm.hv.machine);
    assert!(!pt_frames.is_empty());

    // "We mapped the page tables to the operating system's address
    // space" — the OS can map anything into its own tables; the VMPL
    // check fires at access time, not map time.
    let pt_va = 0x6660_0000u64;
    {
        let (kernel, mut ctx) = cvm.kctx();
        kernel.map_user_page(&mut ctx, pid, pt_va, pt_frames[0], PteFlags::user_data()).unwrap();
    }

    // The write attempt faults, every time, and the CVM halts.
    retry_until_halt(&mut cvm, |cvm| {
        let os_aspace = cvm.kernel.process(1).unwrap().aspace.unwrap();
        match os_aspace.write_virt(&mut cvm.hv.machine, pt_va, &[0xff; 8], Vmpl::Vmpl3, Cpl::Cpl0) {
            Err(veil_snp::pt::PtError::Snp(e)) => Err(e),
            Err(_) => Err(SnpError::OutOfRange { gfn: 0 }),
            Ok(()) => Ok(()),
        }
    });
    assert!(
        matches!(cvm.hv.machine.halted(), Some(HaltReason::NestedPageFault(_))),
        "CVM must halt with continuous #NPFs"
    );
    // Integrity preserved: the cloned tables still translate correctly.
    assert!(clone.translate(&cvm.hv.machine, handle.base).is_ok());
}

/// §8.3 attack 2: overwrite a KCI-protected module's text after
/// disabling the OS's own page-table W⊕X (setting the write bit).
#[test]
fn attack2_module_text_overwrite_halts_with_npf() {
    let mut cvm = cvm();
    let image = ModuleImage::build_signed("victim_module", 8192, &VENDOR_KEY);
    {
        let (kernel, mut ctx) = cvm.kctx();
        kernel.load_module(&mut ctx, &image).unwrap();
    }
    let text_gfns = cvm.kernel.modules["victim_module"].text_gfns.clone();
    let original = cvm.hv.machine.read(Vmpl::Vmpl1, gpa_of(text_gfns[0]), 64).unwrap();

    // "We set the write bit in the operating system's page tables to
    // disable page table-based W^X" — map the module text writable into
    // a process address space (the OS controls its own tables freely).
    let pid = cvm.spawn();
    {
        let mut sys = cvm.sys(pid);
        sys.mmap(4096).unwrap(); // create the address space
    }
    let text_va = 0x7770_0000u64;
    {
        let (kernel, mut ctx) = cvm.kctx();
        kernel
            .map_user_page(&mut ctx, pid, text_va, text_gfns[0], PteFlags::kernel_data())
            .unwrap();
    }

    // Overwrite attempt: the PTE says writable, the RMP says no.
    retry_until_halt(&mut cvm, |cvm| {
        let os_aspace = cvm.kernel.process(pid).unwrap().aspace.unwrap();
        match os_aspace.write_virt(
            &mut cvm.hv.machine,
            text_va,
            b"\xcc\xcc shellcode",
            Vmpl::Vmpl3,
            Cpl::Cpl0,
        ) {
            Err(veil_snp::pt::PtError::Snp(e)) => Err(e),
            Err(_) => Err(SnpError::OutOfRange { gfn: 0 }),
            Ok(()) => Ok(()),
        }
    });
    assert!(matches!(cvm.hv.machine.halted(), Some(HaltReason::NestedPageFault(_))));
    // Module text is intact.
    assert_eq!(cvm.hv.machine.read(Vmpl::Vmpl1, gpa_of(text_gfns[0]), 64).unwrap(), original);
}

/// Supplementary: direct writes to kernel text (code injection without a
/// module) also bounce off the boot-time W⊕X pass.
#[test]
fn kernel_text_injection_blocked() {
    let mut cvm = cvm();
    let text = cvm.gate.monitor.layout.kernel_text.start;
    let r = cvm.hv.machine.write(Vmpl::Vmpl3, gpa_of(text), b"\x90\x90\x90");
    assert!(r.is_err(), "kernel text must be unwritable at Dom_UNT");
    // Data pages cannot be executed in supervisor mode either.
    let data = cvm.gate.monitor.layout.kernel_data.start;
    let r = cvm.hv.machine.check_exec(Vmpl::Vmpl3, Cpl::Cpl0, gpa_of(data));
    assert!(r.is_err(), "kernel data must not be supervisor-executable");
}

/// Supplementary: a halted CVM refuses further guest work (the paper's
/// halt is terminal).
#[test]
fn halted_cvm_stays_halted() {
    let mut cvm = cvm();
    let mon = cvm.gate.monitor.layout.mon_pool.start;
    let npf = match cvm.hv.machine.write(Vmpl::Vmpl3, gpa_of(mon), b"x") {
        Err(SnpError::Npf(n)) => n,
        other => panic!("expected #NPF, got {other:?}"),
    };
    cvm.hv.machine.halt(HaltReason::NestedPageFault(npf));
    let (kernel, mut ctx) = cvm.kctx();
    let r = kernel.accept_page(&mut ctx, 100);
    assert!(r.is_err(), "no further guest progress after the halt");
    let m: &Machine = &cvm.hv.machine;
    assert!(m.halted().is_some());
}
