//! Metrics-invariant suite for the `veil-metrics` tentpole:
//!
//! * histogram bucket assignment depends only on the sample multiset
//!   (permutation-invariant), and merge is commutative and associative;
//! * the JSON snapshot digest is bit-stable across same-seed replays of
//!   the same workload (fresh CVM each time);
//! * the http workload produces a golden-pinned snapshot digest and
//!   well-formed folded-stack lines;
//! * metrics collection is observationally inert: the trace digest,
//!   cycle account, and hypervisor stats of a metrics-on run are
//!   bit-identical to its metrics-off twin.

use veil::metrics::Histogram;
use veil::prelude::*;
use veil_testkit::{prop, prop_assert, prop_assert_eq};
use veil_workloads::driver::VeilUnshieldedDriver;
use veil_workloads::http::HttpWorkload;
use veil_workloads::Workload;

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Samples spanning the full dynamic range: tiny latencies, the 7,135-cycle
/// switch neighborhood, and huge outliers all in one strategy.
fn samples() -> prop::Strategy<Vec<u64>> {
    let value =
        prop::one_of(vec![prop::u64s(0..16), prop::u64s(4_000..10_000), prop::u64s(0..u64::MAX)]);
    prop::vecs(value, 0..40)
}

#[test]
fn bucket_counts_are_permutation_invariant() {
    let rotated = prop::tuple2(samples(), prop::usizes(0..64));
    prop::check("bucket_counts_are_permutation_invariant", 200, &rotated, |(xs, rot)| {
        let mut reversed = xs.clone();
        reversed.reverse();
        let mut rotated = xs.clone();
        if !rotated.is_empty() {
            rotated.rotate_left(rot % xs.len().max(1));
        }
        let (a, b, c) = (hist_of(&xs), hist_of(&reversed), hist_of(&rotated));
        prop_assert_eq!(a.buckets(), b.buckets());
        prop_assert_eq!(a.buckets(), c.buckets());
        prop_assert_eq!(a.percentile(50.0), b.percentile(50.0));
        prop_assert_eq!(a.percentile(99.9), c.percentile(99.9));
        prop_assert_eq!(
            (a.count(), a.sum(), a.min(), a.max()),
            (b.count(), b.sum(), b.min(), b.max())
        );
        Ok(())
    });
}

#[test]
fn histogram_merge_is_commutative_and_associative() {
    let triple = prop::tuple3(samples(), samples(), samples());
    prop::check("histogram_merge_is_commutative_and_associative", 200, &triple, |(x, y, z)| {
        let (a, b, c) = (hist_of(&x), hist_of(&y), hist_of(&z));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Merging equals recording the concatenation.
        let concat: Vec<u64> = x.iter().chain(y.iter()).chain(z.iter()).copied().collect();
        prop_assert_eq!(&ab_c, &hist_of(&concat));
        Ok(())
    });
}

/// Boots a metrics-on CVM and runs `n` http requests unshielded.
fn http_metrics_cvm(n: usize) -> Cvm {
    let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).metrics(true).build().unwrap();
    let pid = cvm.spawn();
    let mut driver = VeilUnshieldedDriver { cvm: &mut cvm, pid };
    HttpWorkload::nginx(n).run(&mut driver).unwrap();
    cvm
}

#[test]
fn snapshot_digest_is_stable_across_replays() {
    // The whole pipeline — event stream, registry folds, span profiler,
    // JSON rendering — must be a pure function of the workload. Replay
    // the same random-size workload in a fresh CVM and require
    // bit-identical snapshots.
    prop::check("snapshot_digest_is_stable_across_replays", 6, &prop::usizes(1..12), |n| {
        let first = http_metrics_cvm(n);
        let second = http_metrics_cvm(n);
        prop_assert_eq!(first.metrics_snapshot(), second.metrics_snapshot());
        prop_assert_eq!(first.metrics_digest_hex(), second.metrics_digest_hex());
        prop_assert!(!first.metrics().is_empty(), "workload must populate the registry");
        Ok(())
    });
}

#[test]
fn http_workload_folded_stacks_are_well_formed() {
    let cvm = http_metrics_cvm(25);
    let folded = cvm.spans().folded();
    assert!(!folded.is_empty(), "http workload must complete spans");
    for line in folded.lines() {
        let (stack, weight) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("no weight separator: {line:?}"));
        assert!(weight.parse::<u64>().is_ok(), "weight must be integer cycles: {line:?}");
        let mut frames = stack.split(';');
        let root = frames.next().unwrap();
        assert!(
            matches!(root, "vmpl0" | "vmpl1" | "vmpl2" | "vmpl3" | "all"),
            "root frame must be a domain label: {line:?}"
        );
        let mut rest = 0;
        for frame in frames {
            rest += 1;
            assert!(!frame.is_empty(), "empty frame in {line:?}");
            assert!(
                frame.chars().all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_'),
                "frame has characters flamegraph.pl would misparse: {line:?}"
            );
        }
        assert!(rest > 0, "stack must have at least one frame under the domain: {line:?}");
    }
}

#[test]
fn http_workload_snapshot_digest_matches_golden() {
    // Golden pin: the deterministic snapshot of `HttpWorkload::nginx(25)`
    // on a 2048-frame single-VCPU CVM. This digest changes whenever the
    // event stream, cost model, bucket layout, span set, or JSON shape
    // changes — all of which are intentional, reviewable events. Update
    // it by running `cargo test http_workload_snapshot_digest` and
    // copying the printed digest.
    let cvm = http_metrics_cvm(25);
    let digest = cvm.metrics_digest_hex();
    println!("http snapshot digest: {digest}");
    assert_eq!(
        digest, "beeb7be62441124f1ba2f5f20a68347050625b652b84737c9e4cde1643ed5773",
        "metrics snapshot drifted from the pinned golden"
    );
}

#[test]
fn metrics_are_observationally_inert() {
    let run = |metrics: bool| {
        let mut cvm =
            CvmBuilder::new().frames(2048).vcpus(1).trace(true).metrics(metrics).build().unwrap();
        let pid = cvm.spawn();
        let mut driver = VeilUnshieldedDriver { cvm: &mut cvm, pid };
        HttpWorkload::nginx(25).run(&mut driver).unwrap();
        cvm
    };
    let on = run(true);
    let off = run(false);
    // Bit-identical externally visible behavior: measurement, cycles,
    // per-domain attribution, hypervisor stats, and the trace digest.
    assert_eq!(on.hv.machine.launch_measurement(), off.hv.machine.launch_measurement());
    assert_eq!(on.hv.machine.cycles().total(), off.hv.machine.cycles().total());
    assert_eq!(on.domain_cycles(), off.domain_cycles());
    assert_eq!(on.hv.stats(), off.hv.stats());
    assert_eq!(on.trace_digest_hex(), off.trace_digest_hex());
    // Only the metrics-on twin accumulated anything.
    assert!(!on.metrics().is_empty());
    assert!(off.metrics().is_empty());
    assert!(off.spans().is_empty());
}
