//! §7 LTP-style conformance runs (native vs enclave SDK).

use veil::prelude::*;
use veil_sdk::ltp::{cases, run_suite};
use veil_sdk::{install_enclave, EnclaveBinary, EnclaveRuntime, EnclaveSys};

#[test]
fn native_kernel_passes_everything() {
    let mut cvm = CvmBuilder::new().frames(4096).build_native().unwrap();
    let pid = cvm.spawn();
    let mut sys = cvm.sys(pid);
    let report = run_suite(&mut sys);
    assert_eq!(report.fail_count(), 0, "native failures: {:?}", report.failed);
}

#[test]
fn veil_kernel_passes_everything() {
    // The deprivileged (Dom_UNT) kernel is behaviourally identical.
    let mut cvm = CvmBuilder::new().frames(4096).build().unwrap();
    let pid = cvm.spawn();
    let mut sys = cvm.sys(pid);
    let report = run_suite(&mut sys);
    assert_eq!(report.fail_count(), 0, "veil failures: {:?}", report.failed);
}

#[test]
fn enclave_sdk_passes_supported_subset() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).build().unwrap();
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("ltp", 4096, 1024)).unwrap();
    let mut rt = EnclaveRuntime::new(handle);
    let report = {
        let mut sys = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
        run_suite(&mut sys)
    };
    // Every supported-syscall case passes; the post-kill probes fail —
    // the paper's partial-pass shape ("our SDK is designed to kill the
    // enclave and exit on their execution; hence, our SDK failed all
    // tests for these system calls").
    let expected_failures = cases().iter().filter(|c| c.name.starts_with("after_kill")).count();
    assert_eq!(report.fail_count(), expected_failures, "failures: {:?}", report.failed);
    for (name, _) in &report.failed {
        assert!(name.starts_with("after_kill"), "unexpected enclave failure {name}");
    }
    assert!(rt.stats.killed, "the unsupported syscall killed the enclave");
    assert!(report.pass_count() > 40);
}

#[test]
fn corpus_covers_most_of_the_surface() {
    let covered: std::collections::BTreeSet<_> = cases().iter().map(|c| c.sysno).collect();
    assert!(covered.len() >= 25, "corpus covers {} distinct syscalls", covered.len());
}
