//! Differential proof of the batched gate path (PR 7).
//!
//! Every Fig. 5 workload runs twice on identically-configured CVMs with
//! VeilS-LOG auditing on: once over the serial Fig. 3 gate protocol
//! (`batch(false)`) and once over the ring-and-doorbell batched protocol
//! (`batch(true)`). The two runs must be *observationally equivalent*:
//!
//! * identical workload results (ops, bytes, checksum);
//! * identical final per-GFN RMP state;
//! * identical protected log storage content, byte for byte;
//! * identical event-stream fold except for the switch plumbing itself
//!   (`vmgexits`, `vmenters`, `domain_switches`, `doorbells`);
//! * and the batched run must actually switch less, not merely equally.

use veil::prelude::*;
use veil::trace::EventCounters;
use veil_os::audit::AuditMode;
use veil_os::syscall::Sysno;
use veil_workloads::driver::VeilUnshieldedDriver;
use veil_workloads::{
    compress::GzipWorkload, http::HttpWorkload, kvstore::UnqliteWorkload, minidb::SqliteWorkload,
    Workload, WorkloadStats,
};

/// One audited run of `workload` over the serial or batched protocol.
struct RunResult {
    stats: WorkloadStats,
    cvm: Cvm,
}

fn run(workload: &mut dyn Workload, batched: bool) -> RunResult {
    let mut cvm = CvmBuilder::new()
        .frames(4096)
        .vcpus(1)
        .log_frames(256)
        .trace(true)
        .batch(batched)
        .build()
        .expect("boot");
    cvm.kernel.audit.mode = AuditMode::VeilLog;
    cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();
    // kvstore's hot syscall is positioned I/O; audit it too so every
    // workload in the matrix actually crosses the gate.
    cvm.kernel.audit.rules.insert(Sysno::Pwrite64);
    cvm.kernel.audit.rules.insert(Sysno::Pread64);
    let pid = cvm.spawn();
    let stats = {
        let mut driver = VeilUnshieldedDriver { cvm: &mut cvm, pid };
        workload.run(&mut driver).expect("workload")
    };
    cvm.flush_gate().expect("flush");
    RunResult { stats, cvm }
}

/// Zeroes the counters that legitimately differ between the serial and
/// batched protocols: the switch plumbing itself. Everything else —
/// audit appends, pvalidates, RMP transitions, page-state changes,
/// faults, I/O exits — must fold identically.
fn masked(mut c: EventCounters) -> EventCounters {
    c.vmgexits = 0;
    c.vmenters = 0;
    c.domain_switches = 0;
    c.doorbells = 0;
    // Ring enqueues are the deferral bookkeeping itself: the serial
    // protocol never enqueues, so the counter is plumbing, not payload.
    c.ring_enqueues = 0;
    c
}

fn differential(name: &str, mk: &dyn Fn() -> Box<dyn Workload>) {
    let serial = run(mk().as_mut(), false);
    let batched = run(mk().as_mut(), true);

    // Workload-visible results are identical.
    assert_eq!(serial.stats.ops, batched.stats.ops, "{name}: ops");
    assert_eq!(serial.stats.bytes, batched.stats.bytes, "{name}: bytes");
    assert_eq!(serial.stats.checksum, batched.stats.checksum, "{name}: checksum");

    // Both runs produced real gate traffic and shed nothing.
    assert!(batched.cvm.gate.gate_requests() > 0, "{name}: no gate traffic");
    assert_eq!(serial.cvm.gate.gate_requests(), batched.cvm.gate.gate_requests(), "{name}: reqs");
    assert_eq!(batched.cvm.gate.deferred_errors(), 0, "{name}: drain shed requests");

    // Final RMP state is identical for every GFN.
    let s_rmp = serial.cvm.hv.machine.rmp();
    let b_rmp = batched.cvm.hv.machine.rmp();
    assert_eq!(s_rmp.frames(), b_rmp.frames(), "{name}: frame count");
    for (gfn, entry) in s_rmp.iter() {
        assert_eq!(Some(entry), b_rmp.entry(gfn), "{name}: RMP entry diverged at gfn {gfn}");
    }

    // Protected log storage holds the same records in the same order.
    // `tsc` is the one legitimately different field: the two protocols
    // have different cycle timelines by design.
    let s_log = serial.cvm.gate.services.log.read_all(&serial.cvm.hv).expect("read log");
    let b_log = batched.cvm.gate.services.log.read_all(&batched.cvm.hv).expect("read log");
    assert_eq!(s_log.len(), b_log.len(), "{name}: log record count diverged");
    assert!(!s_log.is_empty(), "{name}: audit produced no records");
    for (s, b) in s_log.iter().zip(&b_log) {
        let s = veil_os::audit::AuditRecord::from_bytes(s).expect("parse serial record");
        let b = veil_os::audit::AuditRecord::from_bytes(b).expect("parse batched record");
        assert_eq!(
            (s.seq, s.pid, s.uid, s.sysno, s.ret),
            (b.seq, b.pid, b.uid, b.sysno, b.ret),
            "{name}: log record diverged"
        );
    }

    // The event-stream folds agree on everything but the switch plumbing.
    let s_fold = EventCounters::from_records(&serial.cvm.trace_records());
    let b_fold = EventCounters::from_records(&batched.cvm.trace_records());
    assert_eq!(masked(s_fold), masked(b_fold), "{name}: masked event fold diverged");

    // And the batch path earned its keep: strictly fewer switches, with
    // at least one doorbell doing the amortizing.
    assert!(
        b_fold.domain_switches < s_fold.domain_switches,
        "{name}: batched run must switch less ({} vs {})",
        b_fold.domain_switches,
        s_fold.domain_switches
    );
    assert!(b_fold.doorbells > 0, "{name}: batched run never rang the doorbell");
    assert_eq!(s_fold.doorbells, 0, "{name}: serial run must not ring the doorbell");
}

#[test]
fn http_batched_equals_serial() {
    differential("http", &|| Box::new(HttpWorkload::nginx(40)));
}

#[test]
fn kvstore_batched_equals_serial() {
    differential("kvstore", &|| Box::new(UnqliteWorkload { entries: 300 }));
}

#[test]
fn minidb_batched_equals_serial() {
    differential("minidb", &|| Box::new(SqliteWorkload { rows: 120 }));
}

#[test]
fn compress_batched_equals_serial() {
    differential("compress", &|| Box::new(GzipWorkload { input_len: 64 * 1024, chunk: 8 * 1024 }));
}
