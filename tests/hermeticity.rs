//! Hermeticity regression test: the workspace must build from an empty
//! cargo registry. Every dependency of every crate has to be a
//! first-party `veil-*` path dependency — no `rand`, no `proptest`, no
//! `criterion`, nothing fetched from crates.io. The deterministic
//! replacements live in `veil-testkit`.

use std::fs;
use std::path::{Path, PathBuf};

/// Names that used to be external dependencies and must never return.
const BANNED: &[&str] = &["rand", "proptest", "criterion", "quickcheck", "serde"];

/// Dependency-declaring TOML sections (including target-specific forms,
/// which contain one of these as a suffix).
const DEP_SECTIONS: &[&str] = &["dependencies", "dev-dependencies", "build-dependencies"];

fn find_manifests(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                find_manifests(&path, out);
            }
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
}

/// Extracts `(section, dep_name)` pairs from a manifest without a TOML
/// parser (which would itself be an external dependency).
fn dependencies(manifest: &str) -> Vec<(String, String)> {
    let mut deps = Vec::new();
    let mut section = String::new();
    let mut in_dep_section = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].to_string();
            // Matches `dependencies`, `dev-dependencies`,
            // `workspace.dependencies`, `target.'cfg(..)'.dependencies`…
            in_dep_section =
                DEP_SECTIONS.iter().any(|s| section == *s || section.ends_with(&format!(".{s}")));
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().trim_matches('"');
            // `veil-testkit.workspace = true` declares dep `veil-testkit`.
            let name = key.split('.').next().unwrap_or(key);
            if !name.is_empty() {
                deps.push((section.clone(), name.to_string()));
            }
        }
    }
    deps
}

#[test]
fn all_dependencies_are_first_party() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = Vec::new();
    find_manifests(root, &mut manifests);
    assert!(
        manifests.len() >= 10,
        "expected the workspace root + member manifests, found {}",
        manifests.len()
    );

    for path in &manifests {
        let text = fs::read_to_string(path).expect("readable manifest");
        for (section, dep) in dependencies(&text) {
            assert!(
                dep.starts_with("veil"),
                "{}: [{}] declares non-first-party dependency `{}` — the \
                 workspace must stay buildable offline with an empty registry \
                 (use veil-testkit instead of external test/bench crates)",
                path.display(),
                section,
                dep
            );
            assert!(
                !BANNED.contains(&dep.as_str()),
                "{}: [{}] reintroduces banned dependency `{}`",
                path.display(),
                section,
                dep
            );
        }
    }
}

#[test]
fn lockfile_contains_only_workspace_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let lock = fs::read_to_string(root.join("Cargo.lock")).expect("Cargo.lock present");
    for line in lock.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name = ") {
            let name = rest.trim_matches('"');
            assert!(
                name == "veil" || name.starts_with("veil-"),
                "Cargo.lock pins external package `{name}` — offline builds would fail"
            );
        }
        assert!(!line.starts_with("source = "), "Cargo.lock references a registry source: {line}");
    }
}

#[test]
fn no_source_file_references_removed_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("readable dir") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
                continue;
            }
            // Skip this file: it names the banned patterns literally.
            if path.extension().and_then(|e| e.to_str()) != Some("rs") || name == "hermeticity.rs" {
                continue;
            }
            let text = fs::read_to_string(&path).expect("readable source");
            for banned in ["use rand", "use proptest", "use criterion", "proptest!"] {
                assert!(
                    !text.contains(banned),
                    "{}: references removed external crate (`{banned}`)",
                    path.display()
                );
            }
        }
    }
}
