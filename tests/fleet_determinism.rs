//! Fleet determinism: scheduling must never leak into results.
//!
//! The fleet's contract (ISSUE 8) is that a given seed produces a
//! bit-identical merged trace/metrics digest at **any** worker count:
//! worker threads and steal order decide only *when* a shard executes,
//! never *what* it computes. These tests pin that contract from the
//! outside — through `veil-fleet`'s public API, the way the bench binary
//! uses it — plus a pure scheduler property test that hammers the
//! work-stealing layer with shuffled steal orders.

use std::sync::atomic::{AtomicU32, Ordering};
use veil_fleet::{run_fleet, run_tasks, run_tasks_with_stats, FleetConfig, TenantKind};
use veil_testkit::rng::splitmix64;

fn small_fleet(kind: TenantKind, seed: u64, workers: usize) -> FleetConfig {
    FleetConfig {
        seed,
        tenants: 16,
        shards: 4,
        workers,
        requests_per_tenant: 4,
        mean_interarrival_cycles: 100_000,
        kind,
        frames: 4096,
        log_frames: 512,
    }
}

#[test]
fn merged_state_is_worker_count_invariant() {
    for kind in TenantKind::ALL {
        let base = run_fleet(&small_fleet(kind, 0xd15ea5e, 1));
        for workers in [2, 4] {
            let other = run_fleet(&small_fleet(kind, 0xd15ea5e, workers));
            assert_eq!(
                other.merged_digest_hex,
                base.merged_digest_hex,
                "{}: merged digest diverged at {workers} workers",
                kind.label()
            );
            // The merged digest already covers these, but pin the parts
            // separately so a failure names the diverging artifact.
            for (a, b) in base.shards.iter().zip(&other.shards) {
                assert_eq!(a.shard, b.shard);
                assert_eq!(a.trace_digest_hex, b.trace_digest_hex, "shard {} trace", a.shard);
                assert_eq!(a.metrics_snapshot, b.metrics_snapshot, "shard {} metrics", a.shard);
                assert_eq!(a.checksum, b.checksum, "shard {} checksum", a.shard);
                assert_eq!(a.makespan_cycles, b.makespan_cycles, "shard {} makespan", a.shard);
            }
            assert_eq!(other.latency.count(), base.latency.count());
            assert_eq!(other.makespan_cycles, base.makespan_cycles);
        }
    }
}

#[test]
fn seed_perturbs_every_shard() {
    let a = run_fleet(&small_fleet(TenantKind::Kvstore, 1, 2));
    let b = run_fleet(&small_fleet(TenantKind::Kvstore, 2, 2));
    assert_ne!(a.merged_digest_hex, b.merged_digest_hex, "seed must reshape arrivals");
    // Arrival times shift, so virtual makespans differ too.
    assert_ne!(a.makespan_cycles, b.makespan_cycles);
}

#[test]
fn shard_reports_describe_real_work() {
    let r = run_fleet(&small_fleet(TenantKind::Http, 0xcafe, 4));
    assert_eq!(r.total_tenants, 16);
    assert_eq!(r.total_ops, 16 * 4);
    assert_eq!(r.latency.count(), r.total_ops);
    for s in &r.shards {
        assert_eq!(s.audit_failures, 0, "shard {} shed audit records", s.shard);
        assert!(s.gate_requests > 0, "shard {} never crossed the gate", s.shard);
        assert!(s.doorbells > 0, "shard {} never used the batched path", s.shard);
        assert!(s.ops == 16, "shard {} ops {}", s.shard, s.ops);
    }
}

#[test]
fn req_propagation_invariants_hold() {
    // ISSUE 9: every `ReqDispatch` in a shard's stream has exactly one
    // matching `ReqComplete`, and the causal decomposition partitions
    // each request's end-to-end latency with no residual.
    let r = run_fleet(&small_fleet(TenantKind::Kvstore, 0x1d, 2));
    assert_eq!(r.attribution.requests, r.total_ops, "every request causally attributed");
    for s in &r.shards {
        assert_eq!(s.paths.len() as u64, s.ops, "shard {}: a path per request", s.shard);
        assert_eq!(s.unmatched_completes, 0, "shard {}: orphaned completion", s.shard);
        let mut seen = std::collections::BTreeSet::new();
        for p in &s.paths {
            assert!(
                seen.insert((p.tenant, p.req)),
                "shard {}: duplicate ReqId ({}, {})",
                s.shard,
                p.tenant,
                p.req
            );
            assert_eq!(
                p.queue_wait + p.batch_stall + p.relay + p.service,
                p.end_to_end(),
                "shard {}: tenant {} req {}: components must sum to e2e exactly",
                s.shard,
                p.tenant,
                p.req
            );
        }
        // Shard-level: the attribution accounts for every cycle the
        // latency histogram recorded, exactly.
        assert_eq!(s.attribution.total(), s.latency.sum(), "shard {}: exact partition", s.shard);
        assert_eq!(s.slo.requests(), s.ops, "shard {}: SLO ledger complete", s.shard);
    }
}

#[test]
fn causal_paths_and_slo_are_worker_count_invariant() {
    // The observability plane obeys the same contract as the digests:
    // paths, attribution, SLO ledgers, and offender tables must be
    // bit-identical at 1, 2, and 4 workers.
    let base = run_fleet(&small_fleet(TenantKind::Http, 0x0b5, 1));
    for workers in [2, 4] {
        let other = run_fleet(&small_fleet(TenantKind::Http, 0x0b5, workers));
        assert_eq!(other.attribution, base.attribution, "attribution at {workers} workers");
        for (a, b) in base.shards.iter().zip(&other.shards) {
            assert_eq!(a.paths, b.paths, "shard {} paths diverged at {workers} workers", a.shard);
            assert_eq!(a.stat_snapshot, b.stat_snapshot, "shard {} veilstat snapshot", a.shard);
        }
        assert_eq!(other.slo.breaches(), base.slo.breaches());
        assert_eq!(other.slo.top_offenders(8), base.slo.top_offenders(8));
        assert_eq!(other.tail.threshold_cycles, base.tail.threshold_cycles);
        assert_eq!(other.tail.requests, base.tail.requests);
        assert_eq!(other.tail.dominant, base.tail.dominant);
        assert_eq!(other.flame_folded("t"), base.flame_folded("t"), "folded stacks");
    }
}

#[test]
fn scheduler_runs_every_task_once_in_order_under_any_steal_order() {
    // Pure scheduler property test: no CVMs, so it can afford to sweep
    // many (seed, worker-count) points. Tasks carry enough busy-work to
    // force genuine interleaving and stealing.
    let n_tasks = 97; // prime: exercises uneven round-robin tails
    let expected: Vec<u64> = (0..n_tasks as u64).map(splitmix64).collect();
    for seed in 0..12 {
        for workers in [1usize, 2, 3, 4, 8] {
            let hits: Vec<AtomicU32> = (0..n_tasks).map(|_| AtomicU32::new(0)).collect();
            let (results, stats) = run_tasks_with_stats(
                (0..n_tasks).collect::<Vec<usize>>(),
                workers,
                seed,
                |i, t| {
                    assert_eq!(i, t, "scheduler must hand the task its submission index");
                    hits[t].fetch_add(1, Ordering::Relaxed);
                    // Busy-work proportional to the task id: uneven task
                    // durations make early queues drain first and force
                    // steals at higher worker counts.
                    let mut acc = t as u64;
                    for _ in 0..(t % 7) * 50 {
                        acc = splitmix64(acc);
                    }
                    std::hint::black_box(acc);
                    splitmix64(t as u64)
                },
            );
            assert_eq!(results, expected, "seed={seed} workers={workers}");
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "a task ran twice");
            assert_eq!(stats.executed, n_tasks as u64);
        }
    }
}

#[test]
fn scheduler_steals_when_work_is_uneven() {
    // One long task pins worker 0; the rest must be stolen by others.
    let (results, stats) = run_tasks_with_stats(vec![400u64, 1, 1, 1, 1, 1, 1, 1], 4, 9, |_, t| {
        let mut acc = t;
        for _ in 0..t * 1000 {
            acc = splitmix64(acc);
        }
        std::hint::black_box(acc);
        t
    });
    assert_eq!(results, vec![400, 1, 1, 1, 1, 1, 1, 1]);
    assert_eq!(stats.executed, 8);
}

#[test]
fn worker_count_does_not_change_pure_results() {
    let tasks: Vec<u64> = (0..64).collect();
    let baseline = run_tasks(tasks.clone(), 1, 0, |_, t| splitmix64(t.wrapping_mul(3)));
    for workers in [2, 4, 16] {
        for seed in [0u64, 7, 0xdead] {
            let got = run_tasks(tasks.clone(), workers, seed, |_, t| splitmix64(t.wrapping_mul(3)));
            assert_eq!(got, baseline, "workers={workers} seed={seed}");
        }
    }
}
