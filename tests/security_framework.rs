//! Table 1: potential attacks against Veil's framework, and the defences.
//!
//! Every test drives an attack from the untrusted components (hypervisor,
//! OS at `Dom_UNT`) through public interfaces and asserts the defence the
//! paper names for that row.

use veil::prelude::*;
use veil_core::cvm::veil_boot_image;
use veil_core::layout::{Layout, LayoutConfig};
use veil_os::monitor::MonRequest;
use veil_snp::machine::{Machine, MachineConfig};
use veil_snp::mem::gpa_of;
use veil_snp::perms::{Cpl, Vmpl};

fn cvm() -> Cvm {
    CvmBuilder::new().frames(2048).vcpus(1).build().expect("boot")
}

/// Table 1, "Load mal. code at Dom_MON/Dom_SER" → remote attestation.
#[test]
fn boot_time_malicious_disk_changes_measurement() {
    // The golden measurement from an honest boot.
    let honest = cvm();
    let golden = honest.hv.machine.launch_measurement().expect("measured");

    // Attacker substitutes a tampered boot disk.
    let layout = Layout::compute(&LayoutConfig { frames: 2048, vcpus: 1, ..Default::default() });
    let mut evil_image = veil_boot_image(&layout);
    evil_image[0].1[100] ^= 0xff; // patch one byte of "VeilMon code"
    let machine = Machine::new(MachineConfig { frames: 2048, ..Default::default() });
    let mut hv = veil_hv::Hypervisor::new(machine);
    hv.launch(&evil_image, layout.boot_vmsa).expect("launch succeeds");
    let evil = hv.machine.launch_measurement().expect("measured");

    // The remote user sees a different measurement and refuses.
    assert_ne!(golden, evil, "tampered disk must change the measurement");
    let user = RemoteUser::new(hv.machine.device_verification_key(), Some(golden), &[5; 32]);
    let report = hv.machine.attest(Vmpl::Vmpl0, [0; 64]).expect("report");
    // Any channel attempt binds the measurement; it mismatches.
    let dh = veil_crypto::DhKeyPair::from_seed(&[1; 32]);
    let mut data = [0u8; 64];
    data[..32].copy_from_slice(&dh.public.0.to_be_bytes());
    let bound = veil_snp::attest::AttestationReport::sign(
        // The attacker cannot sign with the device key themselves — this
        // uses the real device, so the (evil) measurement is embedded.
        &hv.machine.device_verification_key(),
        report.measurement,
        Vmpl::Vmpl0,
        data,
    );
    assert!(user.verify_and_derive(&bound, &dh.public).is_err());
}

/// Table 1, "Read/write at Dom_MON/Dom_SER" → restricted by VMPL.
#[test]
fn os_cannot_touch_monitor_or_service_memory() {
    let mut cvm = cvm();
    let layout = cvm.gate.monitor.layout.clone();
    for (region, name) in [
        (layout.mon_image.clone(), "monitor image"),
        (layout.mon_pool.clone(), "monitor pool"),
        (layout.ser_image.clone(), "services image"),
        (layout.ser_pool.clone(), "services pool"),
        (layout.log_storage.clone(), "log storage"),
    ] {
        let gpa = gpa_of(region.start);
        assert!(cvm.hv.machine.read(Vmpl::Vmpl3, gpa, 8).is_err(), "{name}: OS read");
        assert!(cvm.hv.machine.write(Vmpl::Vmpl3, gpa, b"x").is_err(), "{name}: OS write");
    }
}

/// Table 1, "Adjust VMPL restrictions" → RMPADJUST prohibited.
#[test]
fn os_cannot_lift_vmpl_restrictions() {
    let mut cvm = cvm();
    let mon_frame = cvm.gate.monitor.layout.mon_pool.start;
    // The OS (VMPL-3) cannot execute RMPADJUST against any level.
    for target in [Vmpl::Vmpl0, Vmpl::Vmpl1, Vmpl::Vmpl2, Vmpl::Vmpl3] {
        let r = cvm.hv.machine.rmpadjust(
            Vmpl::Vmpl3,
            mon_frame,
            target,
            veil_snp::perms::VmplPerms::all(),
        );
        assert!(r.is_err(), "RMPADJUST from Dom_UNT targeting {target} must fault");
    }
    // Even VMPL-1 (a compromised service, hypothetically) cannot grant
    // itself monitor memory: its own perms there are empty.
    let r = cvm.hv.machine.rmpadjust(
        Vmpl::Vmpl1,
        mon_frame,
        Vmpl::Vmpl2,
        veil_snp::perms::VmplPerms::r(),
    );
    assert!(r.is_err(), "no escalation through lower levels");
}

/// Table 1, "Overwrite sensitive registers" → protected in Dom_MON.
#[test]
fn os_cannot_touch_saved_domain_state() {
    let mut cvm = cvm();
    // Every VMSA frame is software-inaccessible, even to read.
    for gfn in cvm.hv.machine.vmsa_gfns() {
        let gpa = gpa_of(gfn);
        assert!(cvm.hv.machine.read(Vmpl::Vmpl3, gpa, 8).is_err(), "VMSA read at {gfn:#x}");
        assert!(cvm.hv.machine.write(Vmpl::Vmpl3, gpa, b"rip").is_err(), "VMSA write at {gfn:#x}");
    }
}

/// Table 1, "Overwrite page tables" → protected in Dom_MON (exercised
/// fully by the §8.3 validation test; here: the monitor pool that holds
/// cloned tables rejects OS writes).
#[test]
fn os_cannot_prepare_page_table_attack() {
    let mut cvm = cvm();
    let pool = cvm.gate.monitor.layout.mon_pool.clone();
    for gfn in [pool.start, pool.start + (pool.end - pool.start) / 2, pool.end - 1] {
        assert!(cvm.hv.machine.write(Vmpl::Vmpl3, gpa_of(gfn), &[0u8; 8]).is_err());
    }
}

/// Table 1, "Create VCPU at Dom_MON/Dom_SER" → creation controlled.
#[test]
fn os_cannot_create_privileged_vcpus() {
    let mut cvm = cvm();
    // Architecturally: VMSA creation is VMPL-0-only.
    let victim = cvm.gate.monitor.layout.kernel_pool.start;
    let r = cvm.hv.machine.vmsa_create(Vmpl::Vmpl3, victim, 9, Vmpl::Vmpl0, Cpl::Cpl0);
    assert!(r.is_err(), "direct VMSA creation from Dom_UNT must fault");
    // Through delegation: VeilMon only boots new VCPUs at Dom_UNT (§5.3).
    let (_, ctx) = cvm.kctx();
    ctx.gate
        .request(ctx.hv, 0, MonRequest::CreateVcpu { vcpu_id: 7, rip: 1, rsp: 2, cr3: 0 })
        .expect("hotplug succeeds");
    let svm = cvm.hv.vcpu(7).expect("hotplugged");
    let unt_vmsa = svm.domain_vmsas[&Vmpl::Vmpl3];
    assert_eq!(cvm.hv.machine.vmsa(unt_vmsa).unwrap().vmpl(), Vmpl::Vmpl3);
    // The kernel-visible VMSAs for the new VCPU's trusted replicas exist
    // but were created by VeilMon, at VeilMon-chosen entry points.
    let mon_vmsa = svm.domain_vmsas[&Vmpl::Vmpl0];
    assert_eq!(
        cvm.hv.machine.vmsa(mon_vmsa).unwrap().regs.rip,
        veil_core::domain::Domain::Mon.entry_rip(),
        "replica entry point is VeilMon's, not attacker-chosen"
    );
}

/// Table 1, "Overwrite IDCB" → IDCBs for trusted pairs in Dom_SER; the
/// OS↔monitor IDCB is writable (it must be) but enclaves can't spoof it.
#[test]
fn idcb_isolation() {
    let mut cvm = cvm();
    let idcb_gfn = cvm.gate.monitor.layout.idcb_gfn(0).expect("idcb");
    let gpa = gpa_of(idcb_gfn);
    // An enclave (VMPL-2) cannot read or forge OS<->monitor messages.
    assert!(cvm.hv.machine.read(Vmpl::Vmpl2, gpa, 16).is_err());
    assert!(cvm.hv.machine.write(Vmpl::Vmpl2, gpa, b"forged").is_err());
    // The hypervisor cannot either (private memory).
    assert!(cvm.hv.attack_read(gpa, 16).is_err());
}

/// Table 1, "OS sends malicious request" → request sanitized.
#[test]
fn malicious_requests_sanitized() {
    let mut cvm = cvm();
    let layout = cvm.gate.monitor.layout.clone();
    let evil_targets =
        [layout.mon_pool.start, layout.ser_pool.start, layout.log_storage.start, 1 << 40];
    for gfn in evil_targets {
        // Pvalidate delegation refuses trusted/out-of-range frames.
        let (_, ctx) = cvm.kctx();
        let r = ctx.gate.request(ctx.hv, 0, MonRequest::Pvalidate { gfn, validate: false });
        assert!(r.is_err(), "pvalidate of {gfn:#x} must be refused");
        // Module staging/destination pointers are sanitized too.
        let (_, ctx) = cvm.kctx();
        let r = ctx.gate.request(
            ctx.hv,
            0,
            MonRequest::KciModuleLoad {
                staging_gfns: vec![gfn],
                image_len: 64,
                dest_gfns: vec![layout.kernel_pool.start],
            },
        );
        assert!(r.is_err(), "module staging at {gfn:#x} must be refused");
    }
    // The CVM is still healthy after all refused attacks.
    assert!(cvm.hv.machine.halted().is_none());
    let pid = cvm.spawn();
    let mut sys = cvm.sys(pid);
    assert!(sys.open("/tmp/alive", OpenFlags::rdwr_create()).is_ok());
}

/// Beyond Table 1: the hypervisor cannot read or corrupt any private
/// guest memory (the base SNP guarantee every defence builds on).
#[test]
fn hypervisor_excluded_from_private_memory() {
    let mut cvm = cvm();
    let layout = cvm.gate.monitor.layout.clone();
    for gfn in [
        layout.mon_image.start,
        layout.ser_pool.start,
        layout.kernel_text.start,
        layout.kernel_pool.start,
    ] {
        assert!(cvm.hv.attack_read(gpa_of(gfn), 16).is_err(), "hv read {gfn:#x}");
        assert!(cvm.hv.attack_write(gpa_of(gfn), b"evil").is_err(), "hv write {gfn:#x}");
    }
    // Shared pages (GHCBs) are the only window, by design.
    let ghcb = layout.kernel_ghcb_gfns(1)[0];
    assert!(cvm.hv.attack_read(gpa_of(ghcb), 16).is_ok());
}
