//! Twin-execution differential harness for the software TLB + RMP
//! verdict cache.
//!
//! The caches in `veil-snp` are *architecturally invisible*: they charge
//! zero cycles, emit zero trace events, and every invalidation mirrors
//! the flush real SNP hardware forces. This harness proves it the blunt
//! way: the same randomized operation schedule is executed on two twin
//! machines — one with the caches enabled, one with `VEIL_NO_TLB`-style
//! caching disabled — and every observable output must be bit-identical:
//! each operation's result, the final cycle totals (global and
//! per-domain), and the deterministic trace digest.
//!
//! Any stale-entry bug (a cached translation or verdict honored after
//! `rmpadjust`/`pvalidate`/`unmap`/`protect`/page-state changes should
//! have killed it) shows up here as a diverging result log, with a
//! `VEIL_TEST_SEED` line that replays the exact schedule.

use veil_snp::machine::{Machine, MachineConfig};
use veil_snp::perms::{Access, Cpl, Vmpl, VmplPerms};
use veil_snp::pt::{AddressSpace, PteFlags};
use veil_testkit::prop::{bools, check, one_of, tuple2, tuple3, u64s, u8s, usizes, vecs, Strategy};
use veil_testkit::{prop_assert, prop_assert_eq};

const FRAMES: u64 = 128;
const DATA_FRAMES: usize = 12;
const VA_SLOTS: u64 = 24;
const VA_BASE: u64 = 0x4000_0000;

/// One step of a randomized schedule. The mix deliberately interleaves
/// RMP mutation (which must invalidate verdicts), page-table edits
/// (which must invalidate translations), raw guest/host writes (which
/// must be snooped against cached table frames), and the read paths
/// that consult both caches.
#[derive(Debug, Clone)]
enum Op {
    Assign(u64),
    Reclaim(u64),
    Pvalidate { gfn: u64, validate: bool },
    Rmpadjust { gfn: u64, target: usize, perms: u8 },
    VmsaCreate(u64),
    VmsaDestroy(u64),
    GuestRead { vmpl: usize, gfn: u64 },
    GuestWrite { vmpl: usize, gfn: u64 },
    HvWrite(u64),
    CheckExec { vmpl: usize, cpl: bool, gfn: u64 },
    Map { slot: u64, frame: usize, writable: bool },
    Unmap { slot: u64 },
    Protect { slot: u64, writable: bool },
    Translate { slot: u64 },
    AccessCheck { slot: u64, write: bool },
    ReadVirt { slot: u64 },
    WriteVirt { slot: u64, byte: u8 },
}

fn op_strategy() -> Strategy<Op> {
    let gfn = || u64s(1..FRAMES);
    let slot = || u64s(0..VA_SLOTS);
    one_of(vec![
        gfn().map(Op::Assign),
        gfn().map(Op::Reclaim),
        tuple2(gfn(), bools()).map(|(gfn, validate)| Op::Pvalidate { gfn, validate }),
        tuple3(gfn(), usizes(1..4), u8s(0..16)).map(|(gfn, target, perms)| Op::Rmpadjust {
            gfn,
            target,
            perms,
        }),
        gfn().map(Op::VmsaCreate),
        gfn().map(Op::VmsaDestroy),
        tuple2(usizes(0..4), gfn()).map(|(vmpl, gfn)| Op::GuestRead { vmpl, gfn }),
        tuple2(usizes(0..4), gfn()).map(|(vmpl, gfn)| Op::GuestWrite { vmpl, gfn }),
        gfn().map(Op::HvWrite),
        tuple3(usizes(0..4), bools(), gfn()).map(|(vmpl, cpl, gfn)| Op::CheckExec {
            vmpl,
            cpl,
            gfn,
        }),
        tuple3(slot(), usizes(0..DATA_FRAMES), bools()).map(|(slot, frame, writable)| Op::Map {
            slot,
            frame,
            writable,
        }),
        slot().map(|slot| Op::Unmap { slot }),
        tuple2(slot(), bools()).map(|(slot, writable)| Op::Protect { slot, writable }),
        slot().map(|slot| Op::Translate { slot }),
        tuple2(slot(), bools()).map(|(slot, write)| Op::AccessCheck { slot, write }),
        slot().map(|slot| Op::ReadVirt { slot }),
        tuple2(slot(), u8s(0..255)).map(|(slot, byte)| Op::WriteVirt { slot, byte }),
    ])
}

/// Everything an execution exposes to the outside world.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    /// One compact line per operation: the `Debug` of its result.
    results: Vec<String>,
    total_cycles: u64,
    domain_cycles: [u64; 4],
    digest: String,
}

/// Runs one schedule on a fresh machine with caching on or off.
fn execute(ops: &[Op], cache_enabled: bool) -> Observation {
    let mut m = Machine::new(MachineConfig { frames: FRAMES as usize, ..Default::default() });
    m.set_cache_enabled(cache_enabled);
    m.tracer_mut().set_enabled(true);

    // Validate and fully grant a pool of frames, then build a VMPL-3
    // address space over some of them — the same prologue on both twins.
    let mut free: Vec<u64> = Vec::new();
    for gfn in 1..FRAMES {
        m.rmp_assign(gfn).unwrap();
        m.pvalidate(Vmpl::Vmpl0, gfn, true).unwrap();
        for v in [Vmpl::Vmpl1, Vmpl::Vmpl2, Vmpl::Vmpl3] {
            m.rmpadjust(Vmpl::Vmpl0, gfn, v, VmplPerms::all()).unwrap();
        }
        free.push(gfn);
    }
    free.reverse();
    let aspace = AddressSpace::new(&mut m, Vmpl::Vmpl3, &mut free).unwrap();
    let data_frames: Vec<u64> = (0..DATA_FRAMES).map(|_| free.pop().unwrap()).collect();

    let mut results = Vec::with_capacity(ops.len());
    for op in ops {
        let line = match *op {
            Op::Assign(gfn) => format!("{:?}", m.rmp_assign(gfn)),
            Op::Reclaim(gfn) => format!("{:?}", m.rmp_reclaim(gfn)),
            Op::Pvalidate { gfn, validate } => {
                format!("{:?}", m.pvalidate(Vmpl::Vmpl0, gfn, validate))
            }
            Op::Rmpadjust { gfn, target, perms } => {
                let t = Vmpl::from_index(target).unwrap();
                let p = VmplPerms::from_bits_truncate(perms);
                format!("{:?}", m.rmpadjust(Vmpl::Vmpl0, gfn, t, p))
            }
            Op::VmsaCreate(gfn) => {
                format!("{:?}", m.vmsa_create(Vmpl::Vmpl0, gfn, 0, Vmpl::Vmpl1, Cpl::Cpl0))
            }
            Op::VmsaDestroy(gfn) => format!("{:?}", m.vmsa_destroy(Vmpl::Vmpl0, gfn)),
            Op::GuestRead { vmpl, gfn } => {
                let v = Vmpl::from_index(vmpl).unwrap();
                format!("{:?}", m.read(v, Machine::gpa(gfn), 8))
            }
            Op::GuestWrite { vmpl, gfn } => {
                let v = Vmpl::from_index(vmpl).unwrap();
                format!("{:?}", m.write(v, Machine::gpa(gfn), &[vmpl as u8; 8]))
            }
            Op::HvWrite(gfn) => format!("{:?}", m.hv_write(Machine::gpa(gfn), b"host....")),
            Op::CheckExec { vmpl, cpl, gfn } => {
                let v = Vmpl::from_index(vmpl).unwrap();
                let c = if cpl { Cpl::Cpl3 } else { Cpl::Cpl0 };
                format!("{:?}", m.check_exec(v, c, Machine::gpa(gfn)))
            }
            Op::Map { slot, frame, writable } => {
                let vaddr = VA_BASE + slot * 4096;
                let pfn = data_frames[frame % data_frames.len()];
                let flags = if writable { PteFlags::user_data() } else { PteFlags::user_ro() };
                format!("{:?}", aspace.map(&mut m, Vmpl::Vmpl3, &mut free, vaddr, pfn, flags))
            }
            Op::Unmap { slot } => {
                format!("{:?}", aspace.unmap(&mut m, Vmpl::Vmpl3, VA_BASE + slot * 4096))
            }
            Op::Protect { slot, writable } => {
                let flags = if writable { PteFlags::user_data() } else { PteFlags::user_ro() };
                format!("{:?}", aspace.protect(&mut m, Vmpl::Vmpl3, VA_BASE + slot * 4096, flags))
            }
            Op::Translate { slot } => {
                format!("{:?}", aspace.translate(&m, VA_BASE + slot * 4096))
            }
            Op::AccessCheck { slot, write } => {
                let access = if write { Access::Write } else { Access::Read };
                format!(
                    "{:?}",
                    aspace.access(&m, VA_BASE + slot * 4096, Vmpl::Vmpl3, Cpl::Cpl3, access)
                )
            }
            Op::ReadVirt { slot } => {
                format!(
                    "{:?}",
                    aspace.read_virt(&m, VA_BASE + slot * 4096, 16, Vmpl::Vmpl3, Cpl::Cpl3)
                )
            }
            Op::WriteVirt { slot, byte } => {
                format!(
                    "{:?}",
                    aspace.write_virt(
                        &mut m,
                        VA_BASE + slot * 4096,
                        &[byte; 16],
                        Vmpl::Vmpl3,
                        Cpl::Cpl3
                    )
                )
            }
        };
        results.push(line);
    }

    Observation {
        results,
        total_cycles: m.cycles().total(),
        domain_cycles: m.domain_cycles(),
        digest: m.tracer().digest_hex(),
    }
}

/// 100 random schedules, each executed twice — caches on and caches
/// off — must be observationally identical: same per-op results, same
/// cycle totals, same trace digest.
#[test]
fn twin_execution_is_cache_invariant() {
    check("twin_execution_is_cache_invariant", 100, &vecs(op_strategy(), 1..250), |ops| {
        let cached = execute(&ops, true);
        let uncached = execute(&ops, false);
        for (i, (a, b)) in cached.results.iter().zip(&uncached.results).enumerate() {
            prop_assert!(a == b, "op {i} ({:?}) diverged: cached {a} vs uncached {b}", ops[i]);
        }
        prop_assert_eq!(cached.total_cycles, uncached.total_cycles);
        prop_assert_eq!(cached.domain_cycles, uncached.domain_cycles);
        prop_assert_eq!(&cached.digest, &uncached.digest);
        Ok(())
    });
}

/// Toggling the cache off mid-run (the `VEIL_NO_TLB` escape hatch) and
/// back on is also invisible: a run that flips the switch between every
/// operation matches the always-off twin.
#[test]
fn mid_run_toggle_is_invisible() {
    check("mid_run_toggle_is_invisible", 25, &vecs(op_strategy(), 1..120), |ops| {
        let uncached = execute(&ops, false);

        let mut m = Machine::new(MachineConfig { frames: FRAMES as usize, ..Default::default() });
        m.tracer_mut().set_enabled(true);
        let mut free: Vec<u64> = Vec::new();
        for gfn in 1..FRAMES {
            m.rmp_assign(gfn).unwrap();
            m.pvalidate(Vmpl::Vmpl0, gfn, true).unwrap();
            for v in [Vmpl::Vmpl1, Vmpl::Vmpl2, Vmpl::Vmpl3] {
                m.rmpadjust(Vmpl::Vmpl0, gfn, v, VmplPerms::all()).unwrap();
            }
            free.push(gfn);
        }
        free.reverse();
        let aspace = AddressSpace::new(&mut m, Vmpl::Vmpl3, &mut free).unwrap();
        let data_frames: Vec<u64> = (0..DATA_FRAMES).map(|_| free.pop().unwrap()).collect();

        for (i, op) in ops.iter().enumerate() {
            m.set_cache_enabled(i % 2 == 0);
            // Reuse the single-op semantics by executing inline; only
            // the read paths matter for divergence, so check them.
            match *op {
                Op::Translate { slot } => {
                    let r = format!("{:?}", aspace.translate(&m, VA_BASE + slot * 4096));
                    prop_assert_eq!(&r, &uncached.results[i]);
                }
                Op::ReadVirt { slot } => {
                    let r = format!(
                        "{:?}",
                        aspace.read_virt(&m, VA_BASE + slot * 4096, 16, Vmpl::Vmpl3, Cpl::Cpl3)
                    );
                    prop_assert_eq!(&r, &uncached.results[i]);
                }
                _ => {
                    // Replay the op exactly as `execute` does so state
                    // stays in lockstep with the uncached twin.
                    replay(&mut m, &aspace, &mut free, &data_frames, op, &uncached.results[i])?;
                }
            }
        }
        prop_assert_eq!(m.cycles().total(), uncached.total_cycles);
        prop_assert_eq!(&m.tracer().digest_hex(), &uncached.digest);
        Ok(())
    });
}

/// Applies `op` to `m` and checks the result line against the expected
/// uncached outcome.
fn replay(
    m: &mut Machine,
    aspace: &AddressSpace,
    free: &mut Vec<u64>,
    data_frames: &[u64],
    op: &Op,
    expected: &str,
) -> Result<(), String> {
    let line = match *op {
        Op::Assign(gfn) => format!("{:?}", m.rmp_assign(gfn)),
        Op::Reclaim(gfn) => format!("{:?}", m.rmp_reclaim(gfn)),
        Op::Pvalidate { gfn, validate } => {
            format!("{:?}", m.pvalidate(Vmpl::Vmpl0, gfn, validate))
        }
        Op::Rmpadjust { gfn, target, perms } => {
            let t = Vmpl::from_index(target).unwrap();
            let p = VmplPerms::from_bits_truncate(perms);
            format!("{:?}", m.rmpadjust(Vmpl::Vmpl0, gfn, t, p))
        }
        Op::VmsaCreate(gfn) => {
            format!("{:?}", m.vmsa_create(Vmpl::Vmpl0, gfn, 0, Vmpl::Vmpl1, Cpl::Cpl0))
        }
        Op::VmsaDestroy(gfn) => format!("{:?}", m.vmsa_destroy(Vmpl::Vmpl0, gfn)),
        Op::GuestRead { vmpl, gfn } => {
            let v = Vmpl::from_index(vmpl).unwrap();
            format!("{:?}", m.read(v, Machine::gpa(gfn), 8))
        }
        Op::GuestWrite { vmpl, gfn } => {
            let v = Vmpl::from_index(vmpl).unwrap();
            format!("{:?}", m.write(v, Machine::gpa(gfn), &[vmpl as u8; 8]))
        }
        Op::HvWrite(gfn) => format!("{:?}", m.hv_write(Machine::gpa(gfn), b"host....")),
        Op::CheckExec { vmpl, cpl, gfn } => {
            let v = Vmpl::from_index(vmpl).unwrap();
            let c = if cpl { Cpl::Cpl3 } else { Cpl::Cpl0 };
            format!("{:?}", m.check_exec(v, c, Machine::gpa(gfn)))
        }
        Op::Map { slot, frame, writable } => {
            let vaddr = VA_BASE + slot * 4096;
            let pfn = data_frames[frame % data_frames.len()];
            let flags = if writable { PteFlags::user_data() } else { PteFlags::user_ro() };
            format!("{:?}", aspace.map(m, Vmpl::Vmpl3, free, vaddr, pfn, flags))
        }
        Op::Unmap { slot } => {
            format!("{:?}", aspace.unmap(m, Vmpl::Vmpl3, VA_BASE + slot * 4096))
        }
        Op::Protect { slot, writable } => {
            let flags = if writable { PteFlags::user_data() } else { PteFlags::user_ro() };
            format!("{:?}", aspace.protect(m, Vmpl::Vmpl3, VA_BASE + slot * 4096, flags))
        }
        Op::Translate { slot } => format!("{:?}", aspace.translate(m, VA_BASE + slot * 4096)),
        Op::AccessCheck { slot, write } => {
            let access = if write { Access::Write } else { Access::Read };
            format!("{:?}", aspace.access(m, VA_BASE + slot * 4096, Vmpl::Vmpl3, Cpl::Cpl3, access))
        }
        Op::ReadVirt { slot } => {
            format!("{:?}", aspace.read_virt(m, VA_BASE + slot * 4096, 16, Vmpl::Vmpl3, Cpl::Cpl3))
        }
        Op::WriteVirt { slot, byte } => {
            format!(
                "{:?}",
                aspace.write_virt(m, VA_BASE + slot * 4096, &[byte; 16], Vmpl::Vmpl3, Cpl::Cpl3)
            )
        }
    };
    if line == expected {
        Ok(())
    } else {
        Err(format!("replay diverged: got {line}, want {expected}"))
    }
}
