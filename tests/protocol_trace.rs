//! Protocol-sequence assertions over the hypervisor's switch trace:
//! the Fig. 3 inter-domain communication flow and the §6.2 enclave
//! entry/exit flow, observed step by step.

use veil::prelude::*;
use veil_hv::SwitchEvent;
use veil_os::monitor::MonRequest;
use veil_sdk::{install_enclave, EnclaveBinary, EnclaveRuntime, EnclaveSys};
use veil_snp::perms::Vmpl;
use veil_workloads::driver::VeilUnshieldedDriver;
use veil_workloads::http::HttpWorkload;
use veil_workloads::Workload;

#[test]
fn fig3_sequence_for_a_delegated_request() {
    let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).build().unwrap();
    let gfn = cvm.gate.monitor.layout.shared.start + 6;
    cvm.hv.machine.rmp_assign(gfn).unwrap();
    cvm.hv.set_trace(true);
    {
        let (_, ctx) = cvm.kctx();
        ctx.gate.request(ctx.hv, 0, MonRequest::Pvalidate { gfn, validate: true }).unwrap();
    }
    // Fig. 3: OS exits to the hypervisor, resumes at VeilMon, processes,
    // and the reply path mirrors it.
    assert_eq!(
        cvm.hv.trace(),
        &[
            SwitchEvent {
                vcpu: 0,
                from: Vmpl::Vmpl3,
                to: Vmpl::Vmpl0,
                user_ghcb: false,
                automatic: false
            },
            SwitchEvent {
                vcpu: 0,
                from: Vmpl::Vmpl0,
                to: Vmpl::Vmpl3,
                user_ghcb: false,
                automatic: false
            },
        ]
    );
}

#[test]
fn service_requests_terminate_in_dom_ser() {
    // Pins the *serial* per-request protocol; the batched twin below
    // asserts the amortized shape.
    let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).batch(false).build().unwrap();
    cvm.kernel.audit.mode = veil_os::audit::AuditMode::VeilLog;
    cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();
    cvm.hv.set_trace(true);
    let pid = cvm.spawn();
    {
        let mut sys = cvm.sys(pid);
        let fd = sys.open("/tmp/traced", OpenFlags::rdwr_create()).unwrap();
        sys.close(fd).unwrap();
    }
    // Each audited syscall produced one Dom_UNT -> Dom_SER round trip.
    let trace = cvm.hv.trace();
    assert_eq!(trace.len(), 4, "open + close = two round trips: {trace:?}");
    for pair in trace.chunks(2) {
        assert_eq!(pair[0].to, Vmpl::Vmpl1, "log append terminates in Dom_SER");
        assert_eq!(pair[1].to, Vmpl::Vmpl3, "and returns to the kernel");
        assert!(!pair[0].user_ghcb);
    }
}

#[test]
fn batched_service_requests_share_one_doorbell_pair() {
    let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).batch(true).build().unwrap();
    cvm.kernel.audit.mode = veil_os::audit::AuditMode::VeilLog;
    cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();
    cvm.hv.set_trace(true);
    let pid = cvm.spawn();
    {
        let mut sys = cvm.sys(pid);
        let fd = sys.open("/tmp/traced", OpenFlags::rdwr_create()).unwrap();
        sys.close(fd).unwrap();
    }
    // Both audit appends sit in the ring: no switches yet.
    assert!(cvm.hv.trace().is_empty(), "{:?}", cvm.hv.trace());
    cvm.flush_gate().unwrap();
    // One doorbell round trip drained both records into Dom_SER.
    let trace = cvm.hv.trace();
    assert_eq!(trace.len(), 2, "one switch pair for the whole batch: {trace:?}");
    assert_eq!(trace[0].to, Vmpl::Vmpl1, "drain terminates in Dom_SER");
    assert_eq!(trace[1].to, Vmpl::Vmpl3, "and returns to the kernel");
    assert_eq!(cvm.hv.stats().doorbells, 1);
    assert_eq!(cvm.gate.services.log.record_count(), 2, "open + close both landed");
}

#[test]
fn enclave_syscall_is_two_user_ghcb_crossings() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).build().unwrap();
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("trace", 2048, 0)).unwrap();
    let mut rt = EnclaveRuntime::new(handle);
    {
        // Enter before tracing so only the syscall's crossings appear.
        let _ = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
    }
    cvm.hv.set_trace(true);
    {
        let mut sys = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
        sys.getpid().unwrap();
    }
    let trace = cvm.hv.trace();
    assert_eq!(
        trace,
        &[
            SwitchEvent {
                vcpu: 0,
                from: Vmpl::Vmpl2,
                to: Vmpl::Vmpl3,
                user_ghcb: true,
                automatic: false
            },
            SwitchEvent {
                vcpu: 0,
                from: Vmpl::Vmpl3,
                to: Vmpl::Vmpl2,
                user_ghcb: true,
                automatic: false
            },
        ],
        "a redirected syscall is exactly one exit + one re-entry through the user GHCB"
    );
}

// ---- golden trace digests (§regression pins) ---------------------------
//
// Each pin is the SHA-256 trace digest (`veil-trace` canonical encoding:
// sequence number, virtual-cycle timestamp, event tag + fields, all
// little-endian) of one protocol flow. The digests are bit-stable for a
// fixed build + configuration; any drift means the privileged-event
// protocol changed. After an *intentional* change, regenerate with:
//
//   VEIL_REGEN_GOLDEN=1 cargo test -q --test protocol_trace -- --nocapture golden
//
// and paste the printed constants over the pins below.

const GOLDEN_BOOT: &str = "e99a51b526701e8af9a201cb0dc773a819af29ea9872f857ca6a03795f0b7d08";
const GOLDEN_HANDSHAKE: &str = "9c861cfd71bc21dcd288553bc5c4e51724ce2ff799aa10e29d6195a5fd8677ba";
const GOLDEN_DOMAIN_SWITCH: &str =
    "3fe0db8b33960c54f25778a0c6cdf2957912be5a2ff01625ccbd55eea641cb71";
const GOLDEN_SYSCALL_REDIRECT: &str =
    "c53f3c76f67778a0ca949f236b31ea3c4e5b8dbe54c840e83bfc7833352fd60d";

fn assert_golden(name: &str, pinned: &str, actual: &str) {
    if std::env::var_os("VEIL_REGEN_GOLDEN").is_some() {
        println!("const {name}: &str = \"{actual}\";");
        return;
    }
    assert_eq!(
        actual, pinned,
        "{name} drifted. If the protocol change is intentional, regenerate the pins with \
         `VEIL_REGEN_GOLDEN=1 cargo test -q --test protocol_trace -- --nocapture golden` \
         and paste the printed constants into tests/protocol_trace.rs."
    );
}

#[test]
fn golden_boot_trace() {
    let cvm = CvmBuilder::new().frames(2048).vcpus(1).trace(true).build().unwrap();
    let digest = cvm.trace_digest_hex();
    // Acceptance gate: bit-stable across two consecutive identical boots.
    let again = CvmBuilder::new().frames(2048).vcpus(1).trace(true).build().unwrap();
    assert_eq!(digest, again.trace_digest_hex(), "boot trace must be deterministic");
    assert!(!cvm.trace_records().is_empty(), "boot must record events");
    assert_golden("GOLDEN_BOOT", GOLDEN_BOOT, &digest);
}

#[test]
fn golden_channel_handshake_trace() {
    let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).build().unwrap();
    // Enabling resets the stream, so the digest covers just the handshake.
    cvm.hv.set_trace(true);
    let user = veil::crypto::DhKeyPair::from_seed(&[7; 32]);
    let (report, mon_pub) = cvm.gate.monitor.begin_channel(&mut cvm.hv).unwrap();
    assert!(report.verify(&cvm.hv.machine.device_verification_key()));
    let _secret = user.agree(&mon_pub);
    cvm.gate.monitor.complete_channel(&mut cvm.hv, &user.public).unwrap();
    let counters = cvm.hv.machine.tracer().counters();
    assert_eq!(counters.handshake_steps, 2, "begin + complete");
    assert_golden("GOLDEN_HANDSHAKE", GOLDEN_HANDSHAKE, &cvm.trace_digest_hex());
}

#[test]
fn golden_domain_switch_trace() {
    let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).build().unwrap();
    let gfn = cvm.gate.monitor.layout.shared.start + 6;
    cvm.hv.machine.rmp_assign(gfn).unwrap();
    cvm.hv.set_trace(true);
    {
        let (_, ctx) = cvm.kctx();
        ctx.gate.request(ctx.hv, 0, MonRequest::Pvalidate { gfn, validate: true }).unwrap();
    }
    assert_golden("GOLDEN_DOMAIN_SWITCH", GOLDEN_DOMAIN_SWITCH, &cvm.trace_digest_hex());
}

#[test]
fn golden_syscall_redirect_trace() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).build().unwrap();
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("gold", 2048, 0)).unwrap();
    let mut rt = EnclaveRuntime::new(handle);
    {
        let _ = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
    }
    cvm.hv.set_trace(true);
    {
        let mut sys = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
        sys.getpid().unwrap();
    }
    assert_golden("GOLDEN_SYSCALL_REDIRECT", GOLDEN_SYSCALL_REDIRECT, &cvm.trace_digest_hex());
}

#[test]
fn golden_batched_http_trace() {
    // The batched gate path's whole-protocol pin: an audited http run
    // whose audit records ride the ring. Stored in tests/goldens/ (not a
    // const) so regeneration is a file write, not a source edit.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/batched_http.digest");
    let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).batch(true).build().unwrap();
    cvm.kernel.audit.mode = veil_os::audit::AuditMode::VeilLog;
    cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();
    cvm.hv.set_trace(true);
    let pid = cvm.spawn();
    {
        let mut driver = VeilUnshieldedDriver { cvm: &mut cvm, pid };
        HttpWorkload::nginx(10).run(&mut driver).unwrap();
    }
    cvm.flush_gate().unwrap();
    assert!(cvm.hv.stats().doorbells > 0, "the batched run must actually batch");
    assert_eq!(cvm.gate.deferred_errors(), 0);
    let digest = cvm.trace_digest_hex();
    if std::env::var_os("VEIL_REGEN_GOLDEN").is_some() {
        std::fs::write(path, format!("{digest}\n")).unwrap();
        println!("regenerated {path}: {digest}");
        return;
    }
    let pinned = std::fs::read_to_string(path)
        .expect("missing tests/goldens/batched_http.digest — regenerate with VEIL_REGEN_GOLDEN=1");
    assert_eq!(
        digest,
        pinned.trim(),
        "batched http trace drifted. If the protocol change is intentional, regenerate with \
         `VEIL_REGEN_GOLDEN=1 cargo test -q --test protocol_trace -- --nocapture golden`."
    );
}

#[test]
fn interrupt_relay_appears_as_automatic_event() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).build().unwrap();
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("irq", 2048, 0)).unwrap();
    let mut rt = EnclaveRuntime::new(handle);
    let _ = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
    cvm.hv.set_trace(true);
    cvm.hv.automatic_exit(0);
    assert_eq!(
        cvm.hv.trace(),
        &[SwitchEvent {
            vcpu: 0,
            from: Vmpl::Vmpl2,
            to: Vmpl::Vmpl3,
            user_ghcb: false,
            automatic: true
        }]
    );
}
