//! Protocol-sequence assertions over the hypervisor's switch trace:
//! the Fig. 3 inter-domain communication flow and the §6.2 enclave
//! entry/exit flow, observed step by step.

use veil::prelude::*;
use veil_hv::SwitchEvent;
use veil_os::monitor::MonRequest;
use veil_sdk::{install_enclave, EnclaveBinary, EnclaveRuntime, EnclaveSys};
use veil_snp::perms::Vmpl;

#[test]
fn fig3_sequence_for_a_delegated_request() {
    let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).build().unwrap();
    let gfn = cvm.gate.monitor.layout.shared.start + 6;
    cvm.hv.machine.rmp_assign(gfn).unwrap();
    cvm.hv.set_trace(true);
    {
        let (_, ctx) = cvm.kctx();
        ctx.gate.request(ctx.hv, 0, MonRequest::Pvalidate { gfn, validate: true }).unwrap();
    }
    // Fig. 3: OS exits to the hypervisor, resumes at VeilMon, processes,
    // and the reply path mirrors it.
    assert_eq!(
        cvm.hv.trace(),
        &[
            SwitchEvent {
                vcpu: 0,
                from: Vmpl::Vmpl3,
                to: Vmpl::Vmpl0,
                user_ghcb: false,
                automatic: false
            },
            SwitchEvent {
                vcpu: 0,
                from: Vmpl::Vmpl0,
                to: Vmpl::Vmpl3,
                user_ghcb: false,
                automatic: false
            },
        ]
    );
}

#[test]
fn service_requests_terminate_in_dom_ser() {
    let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).build().unwrap();
    cvm.kernel.audit.mode = veil_os::audit::AuditMode::VeilLog;
    cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();
    cvm.hv.set_trace(true);
    let pid = cvm.spawn();
    {
        let mut sys = cvm.sys(pid);
        let fd = sys.open("/tmp/traced", OpenFlags::rdwr_create()).unwrap();
        sys.close(fd).unwrap();
    }
    // Each audited syscall produced one Dom_UNT -> Dom_SER round trip.
    let trace = cvm.hv.trace();
    assert_eq!(trace.len(), 4, "open + close = two round trips: {trace:?}");
    for pair in trace.chunks(2) {
        assert_eq!(pair[0].to, Vmpl::Vmpl1, "log append terminates in Dom_SER");
        assert_eq!(pair[1].to, Vmpl::Vmpl3, "and returns to the kernel");
        assert!(!pair[0].user_ghcb);
    }
}

#[test]
fn enclave_syscall_is_two_user_ghcb_crossings() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).build().unwrap();
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("trace", 2048, 0)).unwrap();
    let mut rt = EnclaveRuntime::new(handle);
    {
        // Enter before tracing so only the syscall's crossings appear.
        let _ = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
    }
    cvm.hv.set_trace(true);
    {
        let mut sys = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
        sys.getpid().unwrap();
    }
    let trace = cvm.hv.trace();
    assert_eq!(
        trace,
        &[
            SwitchEvent {
                vcpu: 0,
                from: Vmpl::Vmpl2,
                to: Vmpl::Vmpl3,
                user_ghcb: true,
                automatic: false
            },
            SwitchEvent {
                vcpu: 0,
                from: Vmpl::Vmpl3,
                to: Vmpl::Vmpl2,
                user_ghcb: true,
                automatic: false
            },
        ],
        "a redirected syscall is exactly one exit + one re-entry through the user GHCB"
    );
}

#[test]
fn interrupt_relay_appears_as_automatic_event() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).build().unwrap();
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("irq", 2048, 0)).unwrap();
    let mut rt = EnclaveRuntime::new(handle);
    let _ = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
    cvm.hv.set_trace(true);
    cvm.hv.automatic_exit(0);
    assert_eq!(
        cvm.hv.trace(),
        &[SwitchEvent {
            vcpu: 0,
            from: Vmpl::Vmpl2,
            to: Vmpl::Vmpl3,
            user_ghcb: false,
            automatic: true
        }]
    );
}
