//! Tests for the implemented §7/§10 future-work extensions:
//! multi-threaded enclaves, syscall batching, and Chancel-style
//! mutually-trusted enclave memory sharing.

use veil::prelude::*;
use veil_sdk::install::add_enclave_thread;
use veil_sdk::{install_enclave, BatchedSys, EnclaveBinary, EnclaveRuntime, EnclaveSys};
use veil_snp::cost::CostCategory;
use veil_snp::mem::PAGE_SIZE;
use veil_snp::perms::{Cpl, Vmpl};

fn cvm(vcpus: u32) -> Cvm {
    CvmBuilder::new().frames(4096).vcpus(vcpus).build().expect("boot")
}

// ---- multi-threaded enclaves (§7) -----------------------------------

#[test]
fn second_thread_runs_on_another_vcpu() {
    let mut cvm = cvm(2);
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("mt", 4096, 2048)).unwrap();
    let thread = add_enclave_thread(&mut cvm, &handle, 1).expect("add thread");
    assert_eq!(thread.vcpu, 1);
    assert_ne!(thread.ghcb_gfn, handle.ghcb_gfn, "per-thread GHCBs");
    {
        let e = cvm.gate.services.enc.enclave(handle.id).unwrap();
        assert_eq!(e.thread_count(), 2);
        let (vmsa1, _) = e.thread(1).unwrap();
        // Synchronized VMSAs: same protected tables, same entry.
        let (vmsa0, _) = e.thread(0).unwrap();
        let m = &cvm.hv.machine;
        assert_eq!(m.vmsa(vmsa0).unwrap().regs.cr3, m.vmsa(vmsa1).unwrap().regs.cr3);
        assert_eq!(m.vmsa(vmsa1).unwrap().vmpl(), Vmpl::Vmpl2);
        // The hypervisor sees a Dom_ENC instance on VCPU 1.
        assert_eq!(cvm.hv.vcpu(1).unwrap().domain_vmsas.get(&Vmpl::Vmpl2), Some(&vmsa1));
    }

    // Thread 0 writes enclave memory; thread 1 (on VCPU 1) reads it.
    let heap = handle.heap_base;
    {
        let mut rt0 = EnclaveRuntime::new(handle.clone());
        let mut sys = EnclaveSys::activate(&mut cvm, &mut rt0).unwrap();
        sys.mem_write(heap, b"cross-thread secret").unwrap();
        sys.deactivate().unwrap();
    }
    {
        let mut rt1 = EnclaveRuntime::for_thread(handle.clone(), thread);
        assert_eq!(rt1.vcpu, 1);
        let mut sys = EnclaveSys::activate(&mut cvm, &mut rt1).unwrap();
        let mut buf = [0u8; 19];
        sys.mem_read(heap, &mut buf).unwrap();
        assert_eq!(&buf, b"cross-thread secret");
        // Thread 1's syscalls work through its own GHCB.
        let fd = sys.open("/tmp/from-thread1", OpenFlags::rdwr_create()).unwrap();
        sys.write(fd, b"hello from vcpu1").unwrap();
        sys.close(fd).unwrap();
        sys.deactivate().unwrap();
        assert!(rt1.stats.syscalls >= 3);
    }
}

#[test]
fn duplicate_thread_refused() {
    let mut cvm = cvm(2);
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("dup", 2048, 0)).unwrap();
    add_enclave_thread(&mut cvm, &handle, 1).unwrap();
    assert!(add_enclave_thread(&mut cvm, &handle, 1).is_err(), "vcpu 1 already has a thread");
    // VCPU 0 already hosts the primary thread.
    assert!(add_enclave_thread(&mut cvm, &handle, 0).is_err());
}

#[test]
fn destroy_tears_down_all_threads() {
    let mut cvm = cvm(2);
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("td", 2048, 0)).unwrap();
    add_enclave_thread(&mut cvm, &handle, 1).unwrap();
    let vmsas: Vec<u64> = {
        let e = cvm.gate.services.enc.enclave(handle.id).unwrap();
        [0u32, 1].iter().map(|v| e.thread(*v).unwrap().0).collect()
    };
    veil_sdk::remove_enclave(&mut cvm, &handle).unwrap();
    for vmsa in vmsas {
        assert!(cvm.hv.machine.vmsa(vmsa).is_none(), "thread VMSA must be destroyed");
    }
}

// ---- syscall batching (§10) ------------------------------------------

#[test]
fn batching_reduces_crossings_with_identical_output() {
    let write_loop = |batch: Option<usize>| -> (u64, u64, Vec<u8>) {
        let mut cvm = cvm(1);
        let pid = cvm.spawn();
        let handle =
            install_enclave(&mut cvm, pid, &EnclaveBinary::build("batch", 2048, 0)).unwrap();
        let mut rt = EnclaveRuntime::new(handle);
        let snap = cvm.hv.machine.cycles().snapshot();
        {
            let mut inner = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
            let run = |sys: &mut dyn Sys| {
                let fd = sys.open("/tmp/batched.log", OpenFlags::rdwr_create()).unwrap();
                for i in 0..32u32 {
                    sys.write(fd, format!("line {i}\n").as_bytes()).unwrap();
                }
                sys.close(fd).unwrap();
            };
            match batch {
                Some(k) => {
                    let mut sys = BatchedSys::new(&mut inner, k);
                    run(&mut sys);
                    sys.finish().unwrap();
                }
                None => run(&mut inner),
            }
            inner.deactivate().unwrap();
        }
        let cycles = cvm.hv.machine.cycles().since(&snap).of(CostCategory::EnclaveExit);
        let contents = {
            let pid2 = cvm.spawn();
            let mut sys = cvm.sys(pid2);
            let fd = sys.open("/tmp/batched.log", OpenFlags::rdonly()).unwrap();
            let mut buf = vec![0u8; 4096];
            let n = sys.read(fd, &mut buf).unwrap();
            buf.truncate(n);
            buf
        };
        (cycles, rt.stats.crossings, contents)
    };
    let (exit_unbatched, crossings_unbatched, out_unbatched) = write_loop(None);
    let (exit_batched, crossings_batched, out_batched) = write_loop(Some(8));
    assert_eq!(out_unbatched, out_batched, "batching must not change file contents");
    assert!(
        crossings_batched * 3 < crossings_unbatched,
        "batch 8 should slash crossings: {crossings_batched} vs {crossings_unbatched}"
    );
    assert!(exit_batched * 2 < exit_unbatched, "exit cycles shrink accordingly");
}

#[test]
fn batching_preserves_program_order_across_flush_points() {
    let mut cvm = cvm(1);
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("order", 2048, 0)).unwrap();
    let mut rt = EnclaveRuntime::new(handle);
    let mut inner = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
    let mut sys = BatchedSys::new(&mut inner, 16);
    let fd = sys.open("/tmp/ordered", OpenFlags::rdwr_create()).unwrap();
    sys.write(fd, b"one ").unwrap();
    sys.write(fd, b"two ").unwrap();
    // A read is a flush barrier: it must observe both queued writes.
    let mut buf = [0u8; 8];
    let n = sys.pread(fd, &mut buf, 0).unwrap();
    assert_eq!(&buf[..n], b"one two ");
    sys.write(fd, b"three").unwrap();
    sys.finish().unwrap();
    inner.deactivate().unwrap();
    let mut os_sys = cvm.sys(pid);
    assert_eq!(os_sys.stat("/tmp/ordered").unwrap().size, 13);
}

#[test]
fn batched_errors_surface_on_flush() {
    let mut cvm = cvm(1);
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("err", 2048, 0)).unwrap();
    let mut rt = EnclaveRuntime::new(handle);
    let mut inner = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
    let mut sys = BatchedSys::new(&mut inner, 4);
    // Queue writes to a bogus fd: optimistic success now...
    assert!(sys.write(9999, b"lost").is_ok());
    sys.flush().unwrap();
    // ...deferred EIO on the next queued call.
    assert_eq!(sys.write(9999, b"x"), Err(veil_os::error::Errno::EIO));
    assert_eq!(sys.stats.deferred_errors, 1);
}

// ---- Chancel-style enclave sharing (§10) ------------------------------

#[test]
fn mutual_sharing_maps_owner_pages_into_peer() {
    let mut cvm = cvm(1);
    let pid_a = cvm.spawn();
    let pid_b = cvm.spawn();
    let ha = install_enclave(
        &mut cvm,
        pid_a,
        &EnclaveBinary::build("owner", 2048, 2048).with_heap_pages(4),
    )
    .unwrap();
    let hb = install_enclave(&mut cvm, pid_b, &EnclaveBinary::build("peer", 2048, 0)).unwrap();

    // Owner writes into the page it will share.
    let shared_vaddr = ha.heap_base;
    {
        let mut rt = EnclaveRuntime::new(ha.clone());
        let mut sys = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
        sys.mem_write(shared_vaddr, b"multi-client state").unwrap();
        sys.deactivate().unwrap();
    }

    // One-sided access is refused until both enclaves agree.
    let enc = &mut cvm.gate.services.enc;
    const SHARE_WINDOW: u64 = 0x5800_0000;
    assert!(
        enc.accept_share(&mut cvm.gate.monitor, &mut cvm.hv, hb.id, ha.id, SHARE_WINDOW).is_err(),
        "no offer yet"
    );
    enc.offer_share(ha.id, hb.id, shared_vaddr, 1).unwrap();
    let base =
        enc.accept_share(&mut cvm.gate.monitor, &mut cvm.hv, hb.id, ha.id, SHARE_WINDOW).unwrap();
    assert_eq!(base, SHARE_WINDOW);

    // The peer now reads the owner's page through its own protected
    // tables, at Dom_ENC.
    let peer_aspace = cvm.gate.services.enc.enclave(hb.id).unwrap().aspace;
    let got = peer_aspace
        .read_virt(&cvm.hv.machine, SHARE_WINDOW, 18, Vmpl::Vmpl2, Cpl::Cpl3)
        .expect("peer reads shared page");
    assert_eq!(&got, b"multi-client state");

    // The OS still cannot (frames remain revoked from Dom_UNT).
    let os_read = cvm.hv.machine.read(
        Vmpl::Vmpl3,
        veil_snp::mem::gpa_of(ha.frames[(shared_vaddr - ha.base) as usize / PAGE_SIZE]),
        18,
    );
    assert!(os_read.is_err());
}

#[test]
fn share_offer_requires_resident_enclave_pages() {
    let mut cvm = cvm(1);
    let pid_a = cvm.spawn();
    let pid_b = cvm.spawn();
    let ha = install_enclave(&mut cvm, pid_a, &EnclaveBinary::build("o2", 2048, 0)).unwrap();
    let hb = install_enclave(&mut cvm, pid_b, &EnclaveBinary::build("p2", 2048, 0)).unwrap();
    let enc = &mut cvm.gate.services.enc;
    // Outside the enclave range: refused.
    assert!(enc.offer_share(ha.id, hb.id, ha.shared_base, 1).is_err());
    // Beyond the resident range: refused.
    assert!(enc.offer_share(ha.id, hb.id, ha.base + ha.len as u64 - PAGE_SIZE as u64, 2).is_err());
}

#[test]
fn acceptance_consumes_the_offer() {
    let mut cvm = cvm(1);
    let pid_a = cvm.spawn();
    let pid_b = cvm.spawn();
    let ha =
        install_enclave(&mut cvm, pid_a, &EnclaveBinary::build("o3", 2048, 0).with_heap_pages(2))
            .unwrap();
    let hb = install_enclave(&mut cvm, pid_b, &EnclaveBinary::build("p3", 2048, 0)).unwrap();
    let enc = &mut cvm.gate.services.enc;
    enc.offer_share(ha.id, hb.id, ha.heap_base, 1).unwrap();
    enc.accept_share(&mut cvm.gate.monitor, &mut cvm.hv, hb.id, ha.id, 0x5900_0000).unwrap();
    // Second acceptance fails: offers are one-shot.
    assert!(enc
        .accept_share(&mut cvm.gate.monitor, &mut cvm.hv, hb.id, ha.id, 0x5a00_0000)
        .is_err());
}
