//! Failure injection: interrupts mid-execution, resource exhaustion,
//! paging misuse, and hostile inputs to trusted parsers.

use veil::prelude::*;
use veil_os::audit::AuditMode;
use veil_os::module::ModuleImage;
use veil_os::monitor::MonRequest;
use veil_sdk::{install_enclave, EnclaveBinary, EnclaveRuntime, EnclaveSys};
use veil_snp::perms::Vmpl;

fn cvm() -> Cvm {
    CvmBuilder::new().frames(4096).vcpus(1).build().expect("boot")
}

/// Interrupts land mid-enclave-execution; the honest hypervisor relays
/// them to Dom_UNT and the OS resumes the enclave — repeatedly, inside a
/// real syscall-heavy run.
#[test]
fn interrupt_storm_during_enclave_run() {
    let mut cvm = cvm();
    let pid = cvm.spawn();
    let handle =
        install_enclave(&mut cvm, pid, &EnclaveBinary::build("storm", 4096, 1024)).unwrap();
    let id = handle.id;
    let mut rt = EnclaveRuntime::new(handle);
    for round in 0..25 {
        {
            let mut sys = EnclaveSys::activate(&mut cvm, &mut rt).unwrap();
            let fd = sys.open("/tmp/storm", OpenFlags::rdwr_create()).unwrap();
            sys.write(fd, format!("round {round}\n").as_bytes()).unwrap();
            sys.close(fd).unwrap();
        }
        // Timer interrupt while Dom_ENC runs: relayed to the OS...
        assert_eq!(cvm.hv.automatic_exit(0), Some(Vmpl::Vmpl3), "round {round}");
        // ...which handles it and reschedules the enclave thread.
        cvm.gate.services.enc.enter_on(&mut cvm.hv, id, 0).expect("resume");
    }
    assert!(cvm.hv.machine.halted().is_none());
    assert!(cvm.hv.stats().automatic_exits >= 25);
}

/// The kernel frame pool running dry degrades gracefully: mmap returns
/// ENOMEM, nothing corrupts, and freeing restores service.
#[test]
fn frame_exhaustion_is_enomem_not_corruption() {
    let mut cvm = CvmBuilder::new().frames(1024).vcpus(1).build().unwrap();
    let pid = cvm.spawn();
    let mut regions = Vec::new();
    loop {
        let mut sys = cvm.sys(pid);
        match sys.mmap(64 * 4096) {
            Ok(addr) => regions.push(addr),
            Err(e) => {
                assert_eq!(e, veil_os::error::Errno::ENOMEM);
                break;
            }
        }
        assert!(regions.len() < 100, "pool must eventually exhaust");
    }
    // Previously mapped regions still work.
    let first = regions[0];
    let mut sys = cvm.sys(pid);
    sys.mem_write(first, b"still alive").unwrap();
    // Freeing one region restores allocation.
    sys.munmap(first, 64 * 4096).unwrap();
    assert!(sys.mmap(4096).is_ok());
}

/// VeilS-LOG storage overflow: records are refused (never overwritten),
/// the kernel counts the failures, and earlier evidence is preserved.
#[test]
fn log_overflow_preserves_earlier_records() {
    let mut cvm = CvmBuilder::new().frames(4096).vcpus(1).log_frames(1).build().unwrap();
    cvm.kernel.audit.mode = AuditMode::VeilLog;
    cvm.kernel.audit.rules = veil_os::audit::paper_ruleset();
    let pid = cvm.spawn();
    {
        let mut sys = cvm.sys(pid);
        for i in 0..60 {
            let fd = sys.open(&format!("/tmp/spam{i}"), OpenFlags::rdwr_create()).unwrap();
            sys.close(fd).unwrap();
        }
    }
    // Under the batched gate path the kernel gave up the per-record
    // response, so overflow surfaces in the gate's deferred-error sink;
    // serially it lands in the kernel's own failure counter.
    cvm.flush_gate().unwrap();
    let failures = cvm.kernel.audit_failures + cvm.gate.deferred_errors();
    assert!(failures > 0, "overflow must be visible");
    assert!(cvm.gate.services.log.dropped > 0);
    let kept = cvm.gate.services.log.read_all(&cvm.hv).unwrap();
    assert!(!kept.is_empty());
    // The first record is still the first open — append-only held.
    let first = veil_os::audit::AuditRecord::from_bytes(&kept[0]).unwrap();
    assert_eq!(first.seq, 0);
}

/// Double page-out / page-in misuse is refused cleanly.
#[test]
fn paging_misuse_refused() {
    use veil_sdk::install::{swap_in_page, swap_out_page};
    let mut cvm = cvm();
    let pid = cvm.spawn();
    let binary = EnclaveBinary::build("pager2", 2048, 0).with_heap_pages(4);
    let mut handle = install_enclave(&mut cvm, pid, &binary).unwrap();
    let vaddr = handle.heap_base;
    swap_out_page(&mut cvm, &handle, vaddr).unwrap();
    // Page-out of a non-resident page: refused.
    assert!(swap_out_page(&mut cvm, &handle, vaddr).is_err());
    // Page-in at a never-sealed address: refused.
    let (staging, dest) = {
        let (kernel, _) = cvm.kctx();
        (kernel.frames.alloc().unwrap(), kernel.frames.alloc().unwrap())
    };
    let (_, ctx) = cvm.kctx();
    let r = ctx.gate.request(
        ctx.hv,
        0,
        MonRequest::EncPageIn {
            enclave_id: handle.id,
            vaddr: vaddr + 4096,
            staging_gfn: staging,
            dest_gfn: dest,
        },
    );
    assert!(r.is_err());
    // The legitimate page-in still works afterwards.
    swap_in_page(&mut cvm, &mut handle, vaddr).unwrap();
}

/// Page-out requests for foreign addresses (outside the enclave) are
/// refused — the OS cannot use paging to strip arbitrary protections.
#[test]
fn page_out_outside_enclave_refused() {
    let mut cvm = cvm();
    let pid = cvm.spawn();
    let handle = install_enclave(&mut cvm, pid, &EnclaveBinary::build("px", 2048, 0)).unwrap();
    let (_, ctx) = cvm.kctx();
    let r = ctx.gate.request(
        ctx.hv,
        0,
        MonRequest::EncPageOut { enclave_id: handle.id, vaddr: handle.shared_base },
    );
    assert!(r.is_err());
}

/// The module parser — trusted code fed attacker bytes — never
/// panics and never accepts corrupted images.
#[test]
fn module_parser_survives_garbage() {
    veil_testkit::prop::check(
        "module_parser_survives_garbage",
        96,
        &veil_testkit::prop::bytes(0..2048),
        |bytes| {
            // Random bytes: parse may fail, must not panic.
            let _ = ModuleImage::deserialize(&bytes);
            // Bit-flipped real images: parse may succeed, but then the
            // signature check must fail.
            let image = ModuleImage::build_signed("prop", 512, &[9; 32]);
            let mut real = image.serialize();
            if !bytes.is_empty() {
                let idx = bytes[0] as usize % real.len();
                real[idx] ^= bytes[0] | 1;
                if let Ok(parsed) = ModuleImage::deserialize(&real) {
                    veil_testkit::prop_assert!(
                        !parsed.verify(&[9; 32]),
                        "tampered image must not verify"
                    );
                }
            }
            Ok(())
        },
    );
}

/// Regression: `Hypervisor::vmgexit`'s early-error paths used to update
/// `HvStats` without recording any trace event, so statistics and trace
/// disagreed under hostile host policies (`refuse_switches`,
/// `misroute_switch_to`). Both now derive from the same event stream, so
/// they cannot drift — this pins that.
#[test]
fn stats_and_trace_agree_under_hostile_switch_policies() {
    use veil::trace::{Event, EventCounters};
    let policies = [
        veil_hv::HvPolicy { refuse_switches: true, ..Default::default() },
        veil_hv::HvPolicy { misroute_switch_to: Some(Vmpl::Vmpl1), ..Default::default() },
    ];
    for policy in policies {
        let mut cvm = CvmBuilder::new().frames(2048).vcpus(1).trace(true).build().unwrap();
        let before = cvm.hv.stats();
        let gfn = cvm.gate.monitor.layout.shared.start + 6;
        cvm.hv.machine.rmp_assign(gfn).unwrap();
        cvm.hv.policy = policy.clone();
        let result = {
            let (_, ctx) = cvm.kctx();
            ctx.gate.request(ctx.hv, 0, MonRequest::Pvalidate { gfn, validate: true })
        };
        assert!(result.is_err(), "hostile switch policy must surface as an error");

        let stats = cvm.hv.stats();
        assert!(stats.vmgexits > before.vmgexits, "the exit itself is still counted");
        // Stats are a pure fold over the recorded stream — zero drift.
        let records = cvm.trace_records();
        assert_eq!(cvm.hv.machine.tracer().dropped(), 0);
        let fold = EventCounters::from_records(&records);
        assert_eq!(stats.vmgexits, fold.vmgexits);
        assert_eq!(stats.domain_switches, fold.domain_switches);
        let switches =
            records.iter().filter(|r| matches!(r.event, Event::DomainSwitch { .. })).count() as u64;
        assert_eq!(stats.domain_switches, switches, "stats agree with the trace");

        if policy.refuse_switches {
            // A refused switch is not a switch — but the exit and the
            // resume-in-place are both visible in the stream.
            assert_eq!(stats.domain_switches, before.domain_switches);
            let tail = &records[records.len() - 2..];
            assert!(matches!(tail[0].event, Event::VmgExit { .. }), "{:?}", tail[0]);
            assert!(
                matches!(tail[1].event, Event::VmEnter { vmpl: 3, .. }),
                "refusal resumes the exiting domain: {:?}",
                tail[1]
            );
        } else {
            // The misrouted switch really happened — to the wrong domain.
            assert_eq!(stats.domain_switches, before.domain_switches + 1);
            let wrong = records
                .iter()
                .rev()
                .find_map(|r| match r.event {
                    Event::DomainSwitch { to, .. } => Some(to),
                    _ => None,
                })
                .unwrap();
            assert_eq!(wrong, 1, "trace records the domain actually resumed");
        }
    }
}

/// Audit-record parsing never panics on arbitrary bytes.
#[test]
fn audit_parser_survives_garbage() {
    veil_testkit::prop::check(
        "audit_parser_survives_garbage",
        96,
        &veil_testkit::prop::bytes(0..256),
        |bytes| {
            let _ = veil_os::audit::AuditRecord::from_bytes(&bytes);
            Ok(())
        },
    );
}
