//! Table 2: potential attacks against enclaves, and VeilS-ENC's defences.

use veil::prelude::*;
use veil_os::monitor::MonRequest;
use veil_sdk::{install_enclave, EnclaveBinary, EnclaveRuntime, EnclaveSys};
use veil_snp::mem::{gpa_of, PAGE_SIZE};
use veil_snp::perms::{Access, Cpl, Vmpl};

fn cvm() -> Cvm {
    CvmBuilder::new().frames(4096).vcpus(1).build().expect("boot")
}

fn installed(cvm: &mut Cvm, name: &str) -> veil_sdk::EnclaveHandle {
    let pid = cvm.spawn();
    install_enclave(cvm, pid, &EnclaveBinary::build(name, 4096, 2048)).expect("install")
}

/// Table 2, "Load incorrect binary" → enclave attestation.
#[test]
fn incorrect_binary_fails_attestation() {
    let mut cvm = cvm();
    // The user's golden measurement for the intended binary.
    let golden = {
        let mut reference = CvmBuilder::new().frames(4096).vcpus(1).build().unwrap();
        let h = installed(&mut reference, "intended");
        reference.gate.services.enc.enclave(h.id).unwrap().measurement
    };
    // The OS swaps in a trojan before finalization.
    let h = installed(&mut cvm, "trojan");
    let measured = cvm.gate.services.enc.enclave(h.id).unwrap().measurement;
    assert_ne!(golden, measured, "trojan binary must change the measurement");
    // The sealed measurement report reaches the user over the secure
    // channel; the user compares and refuses to provision secrets.
    let shared = [3u8; 32];
    let mut service_chan = SecureChannel::new(shared);
    let mut user_chan = SecureChannel::new(shared);
    let sealed = cvm.gate.services.enc.report_measurement(h.id, &mut service_chan).unwrap();
    let report = user_chan.open(&sealed).unwrap();
    assert_eq!(&report[8..40], &measured.0, "channel carries the true measurement");
}

/// Table 2, "Read/write memory" → restrictions in Dom_UNT.
#[test]
fn os_cannot_access_enclave_memory() {
    let mut cvm = cvm();
    let h = installed(&mut cvm, "victim");
    for gfn in &h.frames {
        assert!(cvm.hv.machine.read(Vmpl::Vmpl3, gpa_of(*gfn), 16).is_err());
        assert!(cvm.hv.machine.write(Vmpl::Vmpl3, gpa_of(*gfn), b"x").is_err());
    }
    // Through the process's own (OS-held) page tables, the app also
    // faults: the PTEs still point at the frames, but the RMP refuses.
    let os_aspace = cvm.kernel.process(h.pid).unwrap().aspace.unwrap();
    let r = os_aspace.read_virt(&cvm.hv.machine, h.base, 16, Vmpl::Vmpl3, Cpl::Cpl3);
    assert!(r.is_err(), "app access through OS tables must #NPF");
}

/// Table 2, "Modify physical layout" → page tables protected in Dom_SER.
#[test]
fn os_cannot_modify_enclave_page_tables() {
    let mut cvm = cvm();
    let h = installed(&mut cvm, "layout");
    let clone = cvm.gate.services.enc.enclave(h.id).unwrap().aspace;
    // Direct edits to the cloned tables fault.
    let r = clone.unmap(&mut cvm.hv.machine, Vmpl::Vmpl3, h.base);
    assert!(r.is_err(), "OS edit of cloned tables must fault");
    // And remapping via the protected API is refused for enclave ranges.
    let (_, ctx) = cvm.kctx();
    let r = ctx.gate.request(
        ctx.hv,
        0,
        MonRequest::EncPermSync { enclave_id: h.id, vaddr: h.base, pte_flags: 0x7 },
    );
    assert!(r.is_err(), "perm-sync into the enclave range must be refused");
}

/// Table 2, "Violate saved state (e.g., rip)" from the OS → VMSA
/// protected in Dom_MON.
#[test]
fn os_cannot_modify_enclave_vmsa() {
    let mut cvm = cvm();
    let h = installed(&mut cvm, "state");
    let vmsa_gfn = cvm.gate.services.enc.enclave(h.id).unwrap().vmsa_gfn;
    assert!(cvm.hv.machine.write(Vmpl::Vmpl3, gpa_of(vmsa_gfn), &[0xff; 8]).is_err());
    assert!(cvm.hv.machine.read(Vmpl::Vmpl3, gpa_of(vmsa_gfn), 8).is_err());
}

/// Table 2, "Incorrect GHCB mapping" → CVM crash on VMGEXIT.
#[test]
fn incorrect_ghcb_mapping_crashes_cvm() {
    let mut cvm = cvm();
    let h = installed(&mut cvm, "ghcb");
    // The OS "maps" a private page as the GHCB instead of the shared one.
    let private = cvm.gate.monitor.layout.kernel_pool.start + 7;
    cvm.hv.machine.set_ghcb_msr(0, private);
    let mut rt = EnclaveRuntime::new(h);
    // Entry attempts a VMGEXIT through the bogus GHCB.
    let ghcb = veil_snp::ghcb::Ghcb::at(&cvm.hv.machine, private);
    assert!(ghcb.is_err(), "private page is not a usable GHCB");
    let r = cvm.hv.vmgexit(0, true);
    assert!(r.is_err(), "the exit wedges");
    assert!(cvm.hv.machine.halted().is_some(), "CVM crashes rather than leaking");
    let _ = &mut rt;
}

/// Table 2, "Violate saved state" from the hypervisor → VMSA in CVM.
#[test]
fn hypervisor_cannot_tamper_enclave_vmsa() {
    let mut cvm = cvm();
    let h = installed(&mut cvm, "hv-state");
    let vmsa_gfn = cvm.gate.services.enc.enclave(h.id).unwrap().vmsa_gfn;
    let before = cvm.hv.machine.vmsa(vmsa_gfn).unwrap().regs.rip;
    assert!(cvm.hv.attack_write(gpa_of(vmsa_gfn), &[0xff; 16]).is_err());
    // Even with the malicious switch-time tampering policy enabled:
    cvm.hv.policy.tamper_vmsa_on_switch = true;
    let mut rt = EnclaveRuntime::new(h);
    let sys = EnclaveSys::activate(&mut cvm, &mut rt).expect("enter still works");
    sys.deactivate().expect("exit");
    assert_eq!(cvm.hv.machine.vmsa(vmsa_gfn).unwrap().regs.rip, before);
}

/// Table 2, "Refuse interrupt relay" → CVM halts with #NPF.
#[test]
fn refused_interrupt_relay_halts() {
    let mut cvm = cvm();
    let h = installed(&mut cvm, "interrupts");
    cvm.hv.policy.relay_interrupts_to_unt = false;
    let mut rt = EnclaveRuntime::new(h);
    let _sys = EnclaveSys::activate(&mut cvm, &mut rt).expect("enter");
    // An interrupt arrives while Dom_ENC runs; the hypervisor refuses to
    // relay. The enclave cannot run the OS handler -> #NPF loop -> halt.
    assert_eq!(cvm.hv.automatic_exit(0), None);
    assert!(matches!(
        cvm.hv.machine.halted(),
        Some(veil_snp::fault::HaltReason::SecurityViolation(_))
    ));
}

/// Honest interrupt relay, for contrast: the enclave is preempted to
/// Dom_UNT and can be resumed afterwards.
#[test]
fn honest_interrupt_relay_preempts_and_resumes() {
    let mut cvm = cvm();
    let h = installed(&mut cvm, "preempt");
    let mut rt = EnclaveRuntime::new(h);
    let _ = EnclaveSys::activate(&mut cvm, &mut rt).expect("enter");
    assert_eq!(cvm.hv.automatic_exit(0), Some(Vmpl::Vmpl3), "relayed to the OS");
    // Note: rt still believes it is inside; re-entry via the hv works.
    cvm.gate.services.enc.enter(&mut cvm.hv, rt.handle.id).expect("resume");
    assert!(cvm.hv.machine.halted().is_none());
}

/// Table 2, "Access memory from Dom_ENC" (malicious enclave) →
/// disjoint physical pages + no way to reach them through its tables.
#[test]
fn malicious_enclave_cannot_read_another_enclave() {
    let mut cvm = cvm();
    let victim = installed(&mut cvm, "victim-data");
    let attacker = installed(&mut cvm, "attacker");
    // Physical disjointness (the finalization invariant).
    for f in &victim.frames {
        assert!(!attacker.frames.contains(f));
    }
    // The attacker's cloned tables simply have no mapping to the victim's
    // frames; its own enclave range maps only its own frames.
    let atk_aspace = cvm.gate.services.enc.enclave(attacker.id).unwrap().aspace;
    let mut reachable = Vec::new();
    atk_aspace.walk(&cvm.hv.machine, &mut |_, pfn, _| reachable.push(pfn));
    for f in &victim.frames {
        assert!(!reachable.contains(f), "victim frame {f:#x} reachable from attacker");
    }
    // And a finalization that tries to alias the victim's frames is
    // refused (disjointness scan): attempt EncFinalize over a region
    // whose mappings point at victim frames.
    let evil_pid = cvm.spawn();
    {
        let mut sys = cvm.sys(evil_pid);
        sys.mmap(PAGE_SIZE).unwrap(); // create an address space
    }
    let evil_cr3 = {
        let victim_frame = victim.frames[0];
        let (kernel, mut ctx) = cvm.kctx();
        // Map the victim's frame into the evil process at the enclave base.
        kernel
            .map_user_page(
                &mut ctx,
                evil_pid,
                veil_os::process::ENCLAVE_BASE,
                victim_frame,
                veil_snp::pt::PteFlags::user_data(),
            )
            .unwrap();
        kernel.process(evil_pid).unwrap().aspace.unwrap().root_gfn()
    };
    let ghcb = cvm.gate.monitor.layout.enclave_ghcb_gfns(1, 8)[3];
    let (_, ctx) = cvm.kctx();
    let r = ctx.gate.request(
        ctx.hv,
        0,
        MonRequest::EncFinalize {
            pid: evil_pid,
            cr3_gfn: evil_cr3,
            base_vaddr: veil_os::process::ENCLAVE_BASE,
            len: PAGE_SIZE,
            ghcb_gfn: ghcb,
        },
    );
    assert!(r.is_err(), "aliasing finalization must be refused");
    assert_eq!(cvm.gate.services.enc.rejected, 1);
}

/// Table 2, "Execute OS code in Dom_ENC" → disallowed in Dom_ENC.
#[test]
fn enclave_cannot_execute_supervisor_code() {
    let mut cvm = cvm();
    let h = installed(&mut cvm, "superviser-wannabe");
    // Enclave frames have no supervisor-execute at VMPL-2.
    for gfn in &h.frames {
        let r = cvm.hv.machine.rmp().check(*gfn, Vmpl::Vmpl2, Access::Execute(Cpl::Cpl0));
        assert!(r.is_err(), "supervisor fetch at {gfn:#x} must fault");
    }
    // Kernel text is unreachable: not mapped in the clone, and the RMP
    // has no VMPL-2 execute rights on it either.
    let ktext = cvm.gate.monitor.layout.kernel_text.start;
    let r = cvm.hv.machine.rmp().check(ktext, Vmpl::Vmpl2, Access::Execute(Cpl::Cpl0));
    assert!(r.is_err());
    let clone = cvm.gate.services.enc.enclave(h.id).unwrap().aspace;
    let mut kernel_mapped = false;
    clone.walk(&cvm.hv.machine, &mut |_, pfn, _| {
        if cvm.gate.monitor.layout.kernel_text.contains(&pfn) {
            kernel_mapped = true;
        }
    });
    assert!(!kernel_mapped, "kernel text must not be mapped in enclave tables");
}

/// A one-to-one-violating layout (two vaddrs onto one frame) is refused.
#[test]
fn aliased_layout_fails_finalization() {
    let mut cvm = cvm();
    let pid = cvm.spawn();
    {
        let mut sys = cvm.sys(pid);
        sys.mmap(PAGE_SIZE).unwrap();
    }
    let frame = {
        let (kernel, mut ctx) = cvm.kctx();
        let frame = kernel.frames.alloc().unwrap();
        let base = veil_os::process::ENCLAVE_BASE;
        kernel
            .map_user_page(&mut ctx, pid, base, frame, veil_snp::pt::PteFlags::user_data())
            .unwrap();
        kernel
            .map_user_page(
                &mut ctx,
                pid,
                base + PAGE_SIZE as u64,
                frame,
                veil_snp::pt::PteFlags::user_data(),
            )
            .unwrap();
        frame
    };
    let cr3 = cvm.kernel.process(pid).unwrap().aspace.unwrap().root_gfn();
    let ghcb = cvm.gate.monitor.layout.enclave_ghcb_gfns(1, 8)[4];
    let (_, ctx) = cvm.kctx();
    let r = ctx.gate.request(
        ctx.hv,
        0,
        MonRequest::EncFinalize {
            pid,
            cr3_gfn: cr3,
            base_vaddr: veil_os::process::ENCLAVE_BASE,
            len: 2 * PAGE_SIZE,
            ghcb_gfn: ghcb,
        },
    );
    assert!(r.is_err(), "aliased (non one-to-one) layout must be refused");
    let _ = frame;
}
