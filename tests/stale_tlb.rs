//! Stale-TLB attack regression tests.
//!
//! The software TLB and the RMP-verdict cache (PR 3) speed up the hot
//! path, but a cache is also an attack surface: if a translation or a
//! positive RMP verdict cached *before* a revocation event survives it,
//! a domain keeps access the RMP says it no longer has. Each test here
//! deliberately warms a cache, performs the revoking operation
//! (`unmap`/`protect`/`RMPADJUST`/page-state change), and proves the
//! `#PF`/`#NPF` still fires. One test drives the revocation through the
//! hypervisor's GHCB page-state-change flow with every hostile
//! [`HvPolicy`] knob engaged, so no policy combination can skip the
//! flush.
//!
//! [`HvPolicy`]: veil_hv::HvPolicy

use veil_hv::{HvPolicy, HvResponse, Hypervisor};
use veil_snp::ghcb::{Ghcb, GhcbExit};
use veil_snp::machine::{Machine, MachineConfig};
use veil_snp::perms::{Access, Cpl, Vmpl, VmplPerms};
use veil_snp::pt::{AddressSpace, PtError, PteFlags};

const FRAMES: usize = 128;

/// A machine with every frame from 1 validated and fully granted, plus a
/// VMPL-3 address space with one page mapped at `VADDR`.
fn setup() -> (Machine, AddressSpace, Vec<u64>, u64) {
    let mut m = Machine::new(MachineConfig { frames: FRAMES, ..Default::default() });
    // The tests must exercise the cache even under `VEIL_NO_TLB=1` CI
    // runs — they are only meaningful with caching force-enabled.
    m.set_cache_enabled(true);
    let mut free: Vec<u64> = Vec::new();
    for gfn in 1..FRAMES as u64 {
        m.rmp_assign(gfn).unwrap();
        m.pvalidate(Vmpl::Vmpl0, gfn, true).unwrap();
        for v in [Vmpl::Vmpl1, Vmpl::Vmpl2, Vmpl::Vmpl3] {
            m.rmpadjust(Vmpl::Vmpl0, gfn, v, VmplPerms::all()).unwrap();
        }
        free.push(gfn);
    }
    free.reverse();
    let aspace = AddressSpace::new(&mut m, Vmpl::Vmpl3, &mut free).unwrap();
    let pfn = free.pop().unwrap();
    aspace.map(&mut m, Vmpl::Vmpl3, &mut free, VADDR, pfn, PteFlags::user_data()).unwrap();
    (m, aspace, free, pfn)
}

const VADDR: u64 = 0x4000_0000;

#[test]
fn stale_translation_after_unmap_faults() {
    let (mut m, aspace, _free, pfn) = setup();
    // Warm the translation cache and prove it is serving hits.
    aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).unwrap();
    let before = m.cache_stats();
    aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).unwrap();
    assert!(m.cache_stats().tlb_hits > before.tlb_hits, "second walk must hit the TLB");

    assert_eq!(aspace.unmap(&mut m, Vmpl::Vmpl3, VADDR).unwrap(), pfn);

    // The cached translation must not be honored after the unmap.
    assert!(matches!(aspace.translate(&m, VADDR), Err(PtError::NotMapped { .. })));
    assert!(aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).is_err());
}

#[test]
fn stale_translation_after_protect_faults_on_write() {
    let (mut m, aspace, _free, _pfn) = setup();
    // Warm with a *write* so the writable flags are what gets cached.
    aspace.write_virt(&mut m, VADDR, b"warmup!!", Vmpl::Vmpl3, Cpl::Cpl3).unwrap();

    aspace.protect(&mut m, Vmpl::Vmpl3, VADDR, PteFlags::user_ro()).unwrap();

    // Reads still work; the cached writable PTE must be gone.
    aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).unwrap();
    assert!(matches!(
        aspace.write_virt(&mut m, VADDR, b"stale!!!", Vmpl::Vmpl3, Cpl::Cpl3),
        Err(PtError::PageFault { access: Access::Write, .. })
    ));
}

#[test]
fn stale_verdict_after_rmpadjust_revoke_faults() {
    let (mut m, aspace, _free, pfn) = setup();
    // Warm the verdict cache through the virtual path and directly.
    aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).unwrap();
    let before = m.cache_stats();
    m.read(Vmpl::Vmpl3, Machine::gpa(pfn), 8).unwrap();
    assert!(m.cache_stats().verdict_hits > before.verdict_hits, "verdict must be cached");

    // VeilMon revokes VMPL-3 access (the §5.1 protection operation).
    m.rmpadjust(Vmpl::Vmpl0, pfn, Vmpl::Vmpl3, VmplPerms::empty()).unwrap();

    // Both the physical and the virtual path must fault now.
    assert!(m.read(Vmpl::Vmpl3, Machine::gpa(pfn), 8).is_err());
    assert!(m.write(Vmpl::Vmpl3, Machine::gpa(pfn), b"x").is_err());
    assert!(aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).is_err());
    // VMPL-0 retains access (revocation was targeted, not a wipe).
    m.read(Vmpl::Vmpl0, Machine::gpa(pfn), 8).unwrap();
}

#[test]
fn stale_verdict_after_exec_revoke_faults() {
    let (mut m, _aspace, mut free, _pfn) = setup();
    let code = free.pop().unwrap();
    // Warm the per-(vmpl, cpl) execute verdict.
    m.check_exec(Vmpl::Vmpl3, Cpl::Cpl3, Machine::gpa(code)).unwrap();
    m.check_exec(Vmpl::Vmpl3, Cpl::Cpl3, Machine::gpa(code)).unwrap();

    // Drop USER_EXEC but keep read/write: only the exec verdict dies.
    m.rmpadjust(Vmpl::Vmpl0, code, Vmpl::Vmpl3, VmplPerms::rw()).unwrap();

    assert!(m.check_exec(Vmpl::Vmpl3, Cpl::Cpl3, Machine::gpa(code)).is_err());
    m.read(Vmpl::Vmpl3, Machine::gpa(code), 8).unwrap();
}

#[test]
fn stale_verdict_after_reassign_faults() {
    // A verdict cached while a page was validated must not survive the
    // page bouncing out to shared and back in as unvalidated.
    let (mut m, _aspace, mut free, _pfn) = setup();
    let gfn = free.pop().unwrap();
    m.read(Vmpl::Vmpl3, Machine::gpa(gfn), 8).unwrap();
    m.read(Vmpl::Vmpl3, Machine::gpa(gfn), 8).unwrap(); // cached verdict

    m.pvalidate(Vmpl::Vmpl0, gfn, false).unwrap();
    m.rmp_reclaim(gfn).unwrap(); // private -> shared (scrubbed)
    m.rmp_assign(gfn).unwrap(); // shared -> assigned, NOT validated

    // Unvalidated memory faults #NPF for every VMPL, cached or not.
    assert!(m.read(Vmpl::Vmpl3, Machine::gpa(gfn), 8).is_err());
    assert!(m.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).is_err());
}

#[test]
fn stale_verdict_after_vmsa_create_faults() {
    let (mut m, _aspace, mut free, _pfn) = setup();
    let gfn = free.pop().unwrap();
    m.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).unwrap();
    m.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).unwrap(); // cached verdict

    m.vmsa_create(Vmpl::Vmpl0, gfn, 0, Vmpl::Vmpl1, Cpl::Cpl0).unwrap();

    // VMSA pages are immutable to software at every VMPL.
    assert!(m.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).is_err());

    m.vmsa_destroy(Vmpl::Vmpl0, gfn).unwrap();
    m.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).unwrap();
}

#[test]
fn direct_pt_edit_is_snooped() {
    // The OS editing page tables *directly* (no map/unmap/protect, no
    // INVLPG) is exactly the case hardware handles with a broadcast
    // shootdown. The model's write snoop must catch it: a raw checked
    // write to a frame the walker has used as a page table flushes the
    // translation cache.
    let (mut m, aspace, _free, _pfn) = setup();
    aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).unwrap(); // warm

    // Find the leaf table frame and zero the whole thing through the
    // plain write path (a hostile or buggy kernel scribbling on tables).
    let tables = aspace.table_frames(&m);
    let leaf = *tables.last().unwrap();
    m.write(Vmpl::Vmpl0, Machine::gpa(leaf), &[0u8; 4096]).unwrap();

    // The cached translation for VADDR must be gone with the PTE.
    assert!(matches!(aspace.translate(&m, VADDR), Err(PtError::NotMapped { .. })));
    assert!(aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).is_err());
}

/// One scripted action against a (machine, address-space) pair in the
/// same-gfn churn twin test below.
#[derive(Debug, Clone, Copy)]
enum Churn {
    /// VMPL-0 RMPADJUSTs `target`'s permissions on the contended gfn.
    Adjust(Vmpl, u8),
    /// Physical read of the contended gfn from `vmpl`.
    ReadPhys(Vmpl),
    /// Physical write to the contended gfn from `vmpl`.
    WritePhys(Vmpl),
    /// Instruction fetch from the contended gfn.
    Exec(Vmpl, Cpl),
    /// Remaps the contended page's VA read-only (`true`) or rw.
    Protect(bool),
    /// VMPL-3 virtual read through the mapping.
    ReadVirt,
    /// VMPL-3 virtual write through the mapping.
    WriteVirt,
    /// VMPL-0 flips validation of the contended gfn off/on.
    Validate(bool),
}

/// A machine + VMPL-3 address space with one page mapped at `VADDR`,
/// with caching forced on or off — the twin halves of the lockstep
/// test.
fn churn_world(cache: bool) -> (Machine, AddressSpace, u64) {
    let mut m = Machine::new(MachineConfig { frames: FRAMES, ..Default::default() });
    m.set_cache_enabled(cache);
    let mut free: Vec<u64> = Vec::new();
    for gfn in 1..FRAMES as u64 {
        m.rmp_assign(gfn).unwrap();
        m.pvalidate(Vmpl::Vmpl0, gfn, true).unwrap();
        for v in [Vmpl::Vmpl1, Vmpl::Vmpl2, Vmpl::Vmpl3] {
            m.rmpadjust(Vmpl::Vmpl0, gfn, v, VmplPerms::all()).unwrap();
        }
        free.push(gfn);
    }
    free.reverse();
    let aspace = AddressSpace::new(&mut m, Vmpl::Vmpl3, &mut free).unwrap();
    let pfn = free.pop().unwrap();
    aspace.map(&mut m, Vmpl::Vmpl3, &mut free, VADDR, pfn, PteFlags::user_data()).unwrap();
    (m, aspace, pfn)
}

/// Applies one churn step and renders the verdict as a comparable
/// string (`Debug` of the full error, so causes must match exactly —
/// not just the ok/err bit).
fn churn_step(step: Churn, m: &mut Machine, aspace: &AddressSpace, gfn: u64) -> String {
    match step {
        Churn::Adjust(target, bits) => format!(
            "{:?}",
            m.rmpadjust(Vmpl::Vmpl0, gfn, target, VmplPerms::from_bits_truncate(bits))
        ),
        Churn::ReadPhys(v) => format!("{:?}", m.read(v, Machine::gpa(gfn), 8).map(|_| ())),
        Churn::WritePhys(v) => format!("{:?}", m.write(v, Machine::gpa(gfn), b"churn!!!")),
        Churn::Exec(v, cpl) => format!("{:?}", m.check_exec(v, cpl, Machine::gpa(gfn))),
        Churn::Protect(ro) => {
            let flags = if ro { PteFlags::user_ro() } else { PteFlags::user_data() };
            format!("{:?}", aspace.protect(m, Vmpl::Vmpl3, VADDR, flags))
        }
        Churn::ReadVirt => {
            format!("{:?}", aspace.read_virt(m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).map(|_| ()))
        }
        Churn::WriteVirt => {
            format!("{:?}", aspace.write_virt(m, VADDR, b"virtwrit", Vmpl::Vmpl3, Cpl::Cpl3))
        }
        Churn::Validate(on) => format!("{:?}", m.pvalidate(Vmpl::Vmpl0, gfn, on)),
    }
}

/// Interleaved protect/access/RMPADJUST churn on the SAME gfn across
/// every VMPL, run in lockstep on a caches-on and a caches-off twin.
/// Every step's exact verdict (including fault cause) must agree — the
/// strongest form of the "a cache may never change semantics" claim,
/// aimed precisely at the revoke-then-re-grant windows where stale
/// entries would hide.
#[test]
fn cache_twins_agree_under_same_gfn_cross_vmpl_churn() {
    use Churn::*;
    let script = [
        // Warm every cache flavor: translations, verdicts, exec checks.
        ReadVirt,
        WriteVirt,
        ReadPhys(Vmpl::Vmpl1),
        Exec(Vmpl::Vmpl3, Cpl::Cpl3),
        // Revoke VMPL-3 write; the cached writable verdicts must die.
        Adjust(Vmpl::Vmpl3, 0b0101),
        WriteVirt,
        WritePhys(Vmpl::Vmpl3),
        ReadVirt,
        // Re-grant, then immediately revoke everything below VMPL-1.
        Adjust(Vmpl::Vmpl3, 0b1111),
        WriteVirt,
        Adjust(Vmpl::Vmpl3, 0b0000),
        Adjust(Vmpl::Vmpl2, 0b0000),
        ReadVirt,
        ReadPhys(Vmpl::Vmpl2),
        ReadPhys(Vmpl::Vmpl1),
        // PTE-level churn racing the RMP-level churn on the same gfn.
        Adjust(Vmpl::Vmpl3, 0b0011),
        Protect(true),
        WriteVirt,
        ReadVirt,
        Protect(false),
        WriteVirt,
        // Exec-permission flip-flop at both rings.
        Adjust(Vmpl::Vmpl3, 0b0111),
        Exec(Vmpl::Vmpl3, Cpl::Cpl3),
        Exec(Vmpl::Vmpl3, Cpl::Cpl0),
        Adjust(Vmpl::Vmpl3, 0b1011),
        Exec(Vmpl::Vmpl3, Cpl::Cpl3),
        Exec(Vmpl::Vmpl3, Cpl::Cpl0),
        // Validation bounce: everything must fault while invalid, and
        // only VMPL-0 regains access after revalidation (RMPADJUST
        // grants survive, lower levels were zeroed above... except
        // VMPL-3 holds 0b1011 from the flip-flop).
        Validate(false),
        ReadPhys(Vmpl::Vmpl0),
        ReadVirt,
        Validate(true),
        ReadPhys(Vmpl::Vmpl0),
        ReadPhys(Vmpl::Vmpl3),
        ReadVirt,
        WriteVirt,
    ];

    let (mut hot, hot_as, gfn_hot) = churn_world(true);
    let (mut cold, cold_as, gfn_cold) = churn_world(false);
    assert_eq!(gfn_hot, gfn_cold, "twins must contend on the same gfn");

    for (i, step) in script.iter().enumerate() {
        let h = churn_step(*step, &mut hot, &hot_as, gfn_hot);
        let c = churn_step(*step, &mut cold, &cold_as, gfn_cold);
        assert_eq!(h, c, "twin divergence at step {i} ({step:?}): caches-on {h} vs caches-off {c}");
    }
    // The caches-on twin must actually have been exercising its caches,
    // or the lockstep proved nothing.
    let stats = hot.cache_stats();
    assert!(stats.tlb_hits > 0, "script never hit the TLB");
    assert!(stats.verdict_hits > 0, "script never hit the verdict cache");
    assert_eq!(cold.cache_stats().tlb_hits, 0);
}

/// RMPADJUST on one VMPL's permissions must not disturb another VMPL's
/// cached verdicts for the same gfn — targeted invalidation, observed
/// through verdict equality with an uncached twin rather than through
/// cache internals.
#[test]
fn rmpadjust_for_one_vmpl_keeps_other_vmpls_correct_on_same_gfn() {
    use Churn::*;
    let (mut hot, hot_as, gfn) = churn_world(true);
    let (mut cold, cold_as, _) = churn_world(false);

    // Warm verdicts for VMPL-1 and VMPL-2 on the contended gfn, then
    // churn only VMPL-3's mask and check the others stay live and
    // correct at every point.
    let script = [
        ReadPhys(Vmpl::Vmpl1),
        ReadPhys(Vmpl::Vmpl2),
        Adjust(Vmpl::Vmpl3, 0b0000),
        ReadPhys(Vmpl::Vmpl1),
        ReadPhys(Vmpl::Vmpl2),
        ReadPhys(Vmpl::Vmpl3),
        Adjust(Vmpl::Vmpl1, 0b0001),
        WritePhys(Vmpl::Vmpl1),
        ReadPhys(Vmpl::Vmpl1),
        ReadPhys(Vmpl::Vmpl2),
    ];
    for (i, step) in script.iter().enumerate() {
        let h = churn_step(*step, &mut hot, &hot_as, gfn);
        let c = churn_step(*step, &mut cold, &cold_as, gfn);
        assert_eq!(h, c, "twin divergence at step {i} ({step:?})");
    }
}

#[test]
fn psc_to_shared_under_hostile_policy_kills_cached_state() {
    // Drive the revocation through the hypervisor's GHCB page-state
    // machinery with every hostile policy knob engaged. No knob may
    // bypass the PSC cache flush: a verdict cached while the page was
    // validated private memory must not be honored once the page has
    // left and re-entered the private domain.
    let machine = Machine::new(MachineConfig { frames: 256, ..MachineConfig::default() });
    let mut hv = Hypervisor::new(machine);
    hv.machine.set_cache_enabled(true);
    hv.policy = HvPolicy {
        relay_interrupts_to_unt: false,
        tamper_vmsa_on_switch: true,
        enforce_enclave_ghcb_scope: false,
        refuse_switches: true,
        misroute_switch_to: Some(Vmpl::Vmpl2),
    };
    hv.launch(&[(1u64, b"veilmon code".to_vec())], 3).unwrap();

    let gfn = 30u64;
    hv.machine.set_ghcb_msr(0, 20); // frame 20 is still shared
    let ghcb = Ghcb::at(&hv.machine, 20).unwrap();

    // Guest takes the page private, validates, and warms the caches.
    ghcb.write_request(&mut hv.machine, Vmpl::Vmpl0, GhcbExit::PageStateChange, gfn, 1).unwrap();
    assert_eq!(hv.vmgexit(0, false).unwrap(), HvResponse::PageStateChanged);
    hv.machine.pvalidate(Vmpl::Vmpl0, gfn, true).unwrap();
    hv.machine.write(Vmpl::Vmpl0, Machine::gpa(gfn), b"secret").unwrap();
    hv.machine.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).unwrap();
    let warm = hv.machine.cache_stats();
    hv.machine.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).unwrap();
    assert!(hv.machine.cache_stats().verdict_hits > warm.verdict_hits);

    // Page-state change back to shared (hypervisor-observed), then the
    // host hands the same gfn back as private-but-unvalidated.
    hv.machine.pvalidate(Vmpl::Vmpl0, gfn, false).unwrap();
    ghcb.write_request(&mut hv.machine, Vmpl::Vmpl0, GhcbExit::PageStateChange, gfn, 0).unwrap();
    assert_eq!(hv.vmgexit(0, false).unwrap(), HvResponse::PageStateChanged);
    ghcb.write_request(&mut hv.machine, Vmpl::Vmpl0, GhcbExit::PageStateChange, gfn, 1).unwrap();
    assert_eq!(hv.vmgexit(0, false).unwrap(), HvResponse::PageStateChanged);

    // #NPF must fire: the pre-PSC verdict is dead, the page is not
    // validated, and the scrub removed the old contents.
    assert!(hv.machine.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).is_err());
    hv.machine.pvalidate(Vmpl::Vmpl0, gfn, true).unwrap();
    assert_eq!(hv.machine.read(Vmpl::Vmpl0, Machine::gpa(gfn), 6).unwrap(), vec![0u8; 6]);
}
