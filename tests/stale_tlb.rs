//! Stale-TLB attack regression tests.
//!
//! The software TLB and the RMP-verdict cache (PR 3) speed up the hot
//! path, but a cache is also an attack surface: if a translation or a
//! positive RMP verdict cached *before* a revocation event survives it,
//! a domain keeps access the RMP says it no longer has. Each test here
//! deliberately warms a cache, performs the revoking operation
//! (`unmap`/`protect`/`RMPADJUST`/page-state change), and proves the
//! `#PF`/`#NPF` still fires. One test drives the revocation through the
//! hypervisor's GHCB page-state-change flow with every hostile
//! [`HvPolicy`] knob engaged, so no policy combination can skip the
//! flush.
//!
//! [`HvPolicy`]: veil_hv::HvPolicy

use veil_hv::{HvPolicy, HvResponse, Hypervisor};
use veil_snp::ghcb::{Ghcb, GhcbExit};
use veil_snp::machine::{Machine, MachineConfig};
use veil_snp::perms::{Access, Cpl, Vmpl, VmplPerms};
use veil_snp::pt::{AddressSpace, PtError, PteFlags};

const FRAMES: usize = 128;

/// A machine with every frame from 1 validated and fully granted, plus a
/// VMPL-3 address space with one page mapped at `VADDR`.
fn setup() -> (Machine, AddressSpace, Vec<u64>, u64) {
    let mut m = Machine::new(MachineConfig { frames: FRAMES, ..Default::default() });
    // The tests must exercise the cache even under `VEIL_NO_TLB=1` CI
    // runs — they are only meaningful with caching force-enabled.
    m.set_cache_enabled(true);
    let mut free: Vec<u64> = Vec::new();
    for gfn in 1..FRAMES as u64 {
        m.rmp_assign(gfn).unwrap();
        m.pvalidate(Vmpl::Vmpl0, gfn, true).unwrap();
        for v in [Vmpl::Vmpl1, Vmpl::Vmpl2, Vmpl::Vmpl3] {
            m.rmpadjust(Vmpl::Vmpl0, gfn, v, VmplPerms::all()).unwrap();
        }
        free.push(gfn);
    }
    free.reverse();
    let aspace = AddressSpace::new(&mut m, Vmpl::Vmpl3, &mut free).unwrap();
    let pfn = free.pop().unwrap();
    aspace.map(&mut m, Vmpl::Vmpl3, &mut free, VADDR, pfn, PteFlags::user_data()).unwrap();
    (m, aspace, free, pfn)
}

const VADDR: u64 = 0x4000_0000;

#[test]
fn stale_translation_after_unmap_faults() {
    let (mut m, aspace, _free, pfn) = setup();
    // Warm the translation cache and prove it is serving hits.
    aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).unwrap();
    let before = m.cache_stats();
    aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).unwrap();
    assert!(m.cache_stats().tlb_hits > before.tlb_hits, "second walk must hit the TLB");

    assert_eq!(aspace.unmap(&mut m, Vmpl::Vmpl3, VADDR).unwrap(), pfn);

    // The cached translation must not be honored after the unmap.
    assert!(matches!(aspace.translate(&m, VADDR), Err(PtError::NotMapped { .. })));
    assert!(aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).is_err());
}

#[test]
fn stale_translation_after_protect_faults_on_write() {
    let (mut m, aspace, _free, _pfn) = setup();
    // Warm with a *write* so the writable flags are what gets cached.
    aspace.write_virt(&mut m, VADDR, b"warmup!!", Vmpl::Vmpl3, Cpl::Cpl3).unwrap();

    aspace.protect(&mut m, Vmpl::Vmpl3, VADDR, PteFlags::user_ro()).unwrap();

    // Reads still work; the cached writable PTE must be gone.
    aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).unwrap();
    assert!(matches!(
        aspace.write_virt(&mut m, VADDR, b"stale!!!", Vmpl::Vmpl3, Cpl::Cpl3),
        Err(PtError::PageFault { access: Access::Write, .. })
    ));
}

#[test]
fn stale_verdict_after_rmpadjust_revoke_faults() {
    let (mut m, aspace, _free, pfn) = setup();
    // Warm the verdict cache through the virtual path and directly.
    aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).unwrap();
    let before = m.cache_stats();
    m.read(Vmpl::Vmpl3, Machine::gpa(pfn), 8).unwrap();
    assert!(m.cache_stats().verdict_hits > before.verdict_hits, "verdict must be cached");

    // VeilMon revokes VMPL-3 access (the §5.1 protection operation).
    m.rmpadjust(Vmpl::Vmpl0, pfn, Vmpl::Vmpl3, VmplPerms::empty()).unwrap();

    // Both the physical and the virtual path must fault now.
    assert!(m.read(Vmpl::Vmpl3, Machine::gpa(pfn), 8).is_err());
    assert!(m.write(Vmpl::Vmpl3, Machine::gpa(pfn), b"x").is_err());
    assert!(aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).is_err());
    // VMPL-0 retains access (revocation was targeted, not a wipe).
    m.read(Vmpl::Vmpl0, Machine::gpa(pfn), 8).unwrap();
}

#[test]
fn stale_verdict_after_exec_revoke_faults() {
    let (mut m, _aspace, mut free, _pfn) = setup();
    let code = free.pop().unwrap();
    // Warm the per-(vmpl, cpl) execute verdict.
    m.check_exec(Vmpl::Vmpl3, Cpl::Cpl3, Machine::gpa(code)).unwrap();
    m.check_exec(Vmpl::Vmpl3, Cpl::Cpl3, Machine::gpa(code)).unwrap();

    // Drop USER_EXEC but keep read/write: only the exec verdict dies.
    m.rmpadjust(Vmpl::Vmpl0, code, Vmpl::Vmpl3, VmplPerms::rw()).unwrap();

    assert!(m.check_exec(Vmpl::Vmpl3, Cpl::Cpl3, Machine::gpa(code)).is_err());
    m.read(Vmpl::Vmpl3, Machine::gpa(code), 8).unwrap();
}

#[test]
fn stale_verdict_after_reassign_faults() {
    // A verdict cached while a page was validated must not survive the
    // page bouncing out to shared and back in as unvalidated.
    let (mut m, _aspace, mut free, _pfn) = setup();
    let gfn = free.pop().unwrap();
    m.read(Vmpl::Vmpl3, Machine::gpa(gfn), 8).unwrap();
    m.read(Vmpl::Vmpl3, Machine::gpa(gfn), 8).unwrap(); // cached verdict

    m.pvalidate(Vmpl::Vmpl0, gfn, false).unwrap();
    m.rmp_reclaim(gfn).unwrap(); // private -> shared (scrubbed)
    m.rmp_assign(gfn).unwrap(); // shared -> assigned, NOT validated

    // Unvalidated memory faults #NPF for every VMPL, cached or not.
    assert!(m.read(Vmpl::Vmpl3, Machine::gpa(gfn), 8).is_err());
    assert!(m.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).is_err());
}

#[test]
fn stale_verdict_after_vmsa_create_faults() {
    let (mut m, _aspace, mut free, _pfn) = setup();
    let gfn = free.pop().unwrap();
    m.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).unwrap();
    m.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).unwrap(); // cached verdict

    m.vmsa_create(Vmpl::Vmpl0, gfn, 0, Vmpl::Vmpl1, Cpl::Cpl0).unwrap();

    // VMSA pages are immutable to software at every VMPL.
    assert!(m.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).is_err());

    m.vmsa_destroy(Vmpl::Vmpl0, gfn).unwrap();
    m.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).unwrap();
}

#[test]
fn direct_pt_edit_is_snooped() {
    // The OS editing page tables *directly* (no map/unmap/protect, no
    // INVLPG) is exactly the case hardware handles with a broadcast
    // shootdown. The model's write snoop must catch it: a raw checked
    // write to a frame the walker has used as a page table flushes the
    // translation cache.
    let (mut m, aspace, _free, _pfn) = setup();
    aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).unwrap(); // warm

    // Find the leaf table frame and zero the whole thing through the
    // plain write path (a hostile or buggy kernel scribbling on tables).
    let tables = aspace.table_frames(&m);
    let leaf = *tables.last().unwrap();
    m.write(Vmpl::Vmpl0, Machine::gpa(leaf), &[0u8; 4096]).unwrap();

    // The cached translation for VADDR must be gone with the PTE.
    assert!(matches!(aspace.translate(&m, VADDR), Err(PtError::NotMapped { .. })));
    assert!(aspace.read_virt(&m, VADDR, 8, Vmpl::Vmpl3, Cpl::Cpl3).is_err());
}

#[test]
fn psc_to_shared_under_hostile_policy_kills_cached_state() {
    // Drive the revocation through the hypervisor's GHCB page-state
    // machinery with every hostile policy knob engaged. No knob may
    // bypass the PSC cache flush: a verdict cached while the page was
    // validated private memory must not be honored once the page has
    // left and re-entered the private domain.
    let machine = Machine::new(MachineConfig { frames: 256, ..MachineConfig::default() });
    let mut hv = Hypervisor::new(machine);
    hv.machine.set_cache_enabled(true);
    hv.policy = HvPolicy {
        relay_interrupts_to_unt: false,
        tamper_vmsa_on_switch: true,
        enforce_enclave_ghcb_scope: false,
        refuse_switches: true,
        misroute_switch_to: Some(Vmpl::Vmpl2),
    };
    hv.launch(&[(1u64, b"veilmon code".to_vec())], 3).unwrap();

    let gfn = 30u64;
    hv.machine.set_ghcb_msr(0, 20); // frame 20 is still shared
    let ghcb = Ghcb::at(&hv.machine, 20).unwrap();

    // Guest takes the page private, validates, and warms the caches.
    ghcb.write_request(&mut hv.machine, Vmpl::Vmpl0, GhcbExit::PageStateChange, gfn, 1).unwrap();
    assert_eq!(hv.vmgexit(0, false).unwrap(), HvResponse::PageStateChanged);
    hv.machine.pvalidate(Vmpl::Vmpl0, gfn, true).unwrap();
    hv.machine.write(Vmpl::Vmpl0, Machine::gpa(gfn), b"secret").unwrap();
    hv.machine.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).unwrap();
    let warm = hv.machine.cache_stats();
    hv.machine.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).unwrap();
    assert!(hv.machine.cache_stats().verdict_hits > warm.verdict_hits);

    // Page-state change back to shared (hypervisor-observed), then the
    // host hands the same gfn back as private-but-unvalidated.
    hv.machine.pvalidate(Vmpl::Vmpl0, gfn, false).unwrap();
    ghcb.write_request(&mut hv.machine, Vmpl::Vmpl0, GhcbExit::PageStateChange, gfn, 0).unwrap();
    assert_eq!(hv.vmgexit(0, false).unwrap(), HvResponse::PageStateChanged);
    ghcb.write_request(&mut hv.machine, Vmpl::Vmpl0, GhcbExit::PageStateChange, gfn, 1).unwrap();
    assert_eq!(hv.vmgexit(0, false).unwrap(), HvResponse::PageStateChanged);

    // #NPF must fire: the pre-PSC verdict is dead, the page is not
    // validated, and the scrub removed the old contents.
    assert!(hv.machine.read(Vmpl::Vmpl0, Machine::gpa(gfn), 8).is_err());
    hv.machine.pvalidate(Vmpl::Vmpl0, gfn, true).unwrap();
    assert_eq!(hv.machine.read(Vmpl::Vmpl0, Machine::gpa(gfn), 6).unwrap(), vec![0u8; 6]);
}
