//! Tier-1 suite for the exhaustive RMP model checker.
//!
//! The heavyweight `ci` configuration exhausts in its own CI job
//! (`tier1-modelcheck`); this suite keeps the load-bearing slice in the
//! default `cargo test` gate:
//!
//! * the `tiny` configuration explored to exhaustion, with the
//!   canonical state/edge counts and the generated paper-Tables-1–2
//!   witness matrix pinned as golden files
//!   (`VEIL_REGEN_GOLDEN=1` regenerates after a reviewed change);
//! * a coverage audit: the fuzzer and the model checker *together*
//!   exercise every [`AdversaryOp`] variant and every [`SnpError`]
//!   verdict variant inside the default budget;
//! * canonicalization soundness properties under the testkit shrinking
//!   engine: gfn relabeling and symmetric-VMPL swaps never change the
//!   canonical key, and states outside each other's symmetry orbit
//!   never collide;
//! * the three seeded `RmpMutation` bugs caught *exhaustively*, with
//!   the BFS minimal-counterexample depth pinned per bug.

use std::collections::BTreeSet;
use std::path::Path;

use veil_adversary::{
    explore, replay, run_sequence_with_coverage, sequence_strategy, AbstractState, AdversaryOp,
    CheckConfig, Coverage, ModelConfig, PageAbs, PolicyKnob,
};
use veil_snp::fault::SnpError;
use veil_snp::perms::Vmpl;
use veil_snp::rmp::RmpMutation;
use veil_testkit::golden;
use veil_testkit::prop::{self, check};
use veil_testkit::{prop_assert, prop_assert_eq, TestRng};

fn golden_path(file: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(file)
}

/// The tentpole gate: the tiny configuration explores to exhaustion
/// with machine == oracle on every edge, and both the canonical graph
/// counts and the generated attack/defence witness matrix match the
/// checked-in goldens byte for byte.
#[test]
fn tiny_exploration_is_exhaustive_and_matches_goldens() {
    let cfg = CheckConfig::new(ModelConfig::tiny());
    let report = explore(&cfg);
    assert!(report.failure.is_none(), "divergence in tiny config: {:?}", report.failure);

    golden::assert_matches(
        "modelcheck counts (tiny)",
        &golden_path("modelcheck_counts_tiny.txt"),
        &veil_adversary::render_counts(&report),
    );
    let witnesses = veil_adversary::generate_witnesses(&report, &cfg).expect("witness generation");
    golden::assert_matches(
        "witness matrix (tiny)",
        &golden_path("witness_matrix_tiny.txt"),
        &veil_adversary::render_witnesses(&witnesses),
    );
}

/// Exploration is deterministic: two runs of the same configuration
/// produce identical graphs, coverage, and per-state BFS paths — the
/// property the pinned goldens and replay indices depend on.
#[test]
fn exploration_is_deterministic() {
    let cfg = CheckConfig::new(ModelConfig::mutation());
    let a = explore(&cfg);
    let b = explore(&cfg);
    assert_eq!(a.states, b.states);
    assert_eq!(a.edges, b.edges);
    assert_eq!(a.coverage, b.coverage);
    let paths_a: Vec<_> = a.visited.values().map(|s| s.path.clone()).collect();
    let paths_b: Vec<_> = b.visited.values().map(|s| s.path.clone()).collect();
    assert_eq!(paths_a, paths_b);
}

/// Every BFS witness path replays cleanly: spot-check the deepest
/// canonical state's pinned path through the lockstep replayer.
#[test]
fn deepest_state_path_replays_cleanly() {
    let cfg = CheckConfig::new(ModelConfig::mutation());
    let report = explore(&cfg);
    let deepest =
        report.visited.values().max_by_key(|s| (s.depth, s.path.clone())).expect("states");
    let (lines, _, _) = replay(&cfg, &deepest.path).expect("pinned BFS path must replay");
    assert_eq!(lines.len(), deepest.path.len());
    assert_eq!(deepest.depth, report.max_depth);
}

/// Satellite: the coverage audit. The fuzzer's default tier-1 slice,
/// the tiny and mutation-config explorations, and one pinned protocol
/// sequence must *together* exercise all 27 [`AdversaryOp`] variants
/// — including the four hostile ring ops of the batched gate path and
/// the three hostile attestation ops (forged reports, replayed reports,
/// tampered boot images) —
/// and all 7 [`SnpError`] verdict variants. A differential harness that
/// never reaches a verdict proves nothing about it.
#[test]
fn fuzzer_and_checker_cover_all_ops_and_verdicts() {
    let mut total = Coverage::default();

    // (a) The fuzzer's slice: the same generator the tier-1 fuzz tests
    // run, 12 seeded sequences of up to 60 ops.
    let strategy = sequence_strategy(60);
    for case in 0..12u64 {
        let ops = strategy.generate(&mut TestRng::from_seed(0xC0FE_0000 + case));
        let (_, cov) = run_sequence_with_coverage(&ops, None).expect("fuzz slice must be green");
        total.merge(&cov);
    }

    // (b) The model checker's tiny exploration (every op but SetPolicy;
    // OutOfRange and the sticky-VMSA verdicts live here).
    total.merge(&explore(&CheckConfig::new(ModelConfig::tiny())).coverage);

    // (c) The mutation configuration on the *clean* machine: VMPL-1 in
    // instruction position makes PermEscalation reachable.
    total.merge(&explore(&CheckConfig::new(ModelConfig::mutation())).coverage);

    // (d) One pinned protocol sequence through the fuzz world: the
    // paper's interrupt-suppression attack halts the machine, and the
    // VMGEXIT attempted after the halt lands the `Halted` verdict (the
    // latch only gates GHCB flows, not plain memory accesses).
    let halt_ops = [
        AdversaryOp::SetPolicy { knob: PolicyKnob::RelayInterrupts, on: false },
        AdversaryOp::SwitchReq { vmpl: Vmpl::Vmpl0, target: Vmpl::Vmpl2, user_ghcb: false },
        AdversaryOp::AutoExit,
        AdversaryOp::SwitchReq { vmpl: Vmpl::Vmpl2, target: Vmpl::Vmpl0, user_ghcb: false },
    ];
    let (_, cov) = run_sequence_with_coverage(&halt_ops, None).expect("halt protocol sequence");
    total.merge(&cov);

    let missing_ops: Vec<_> =
        AdversaryOp::VARIANT_NAMES.iter().filter(|n| !total.ops.contains(*n)).collect();
    assert!(missing_ops.is_empty(), "op variants never exercised: {missing_ops:?}");
    let missing_verdicts: Vec<_> =
        SnpError::VARIANT_NAMES.iter().filter(|n| !total.verdicts.contains(*n)).collect();
    assert!(missing_verdicts.is_empty(), "verdict variants never produced: {missing_verdicts:?}");
}

/// Strategy over syntactically valid abstract states for a
/// configuration with `pages` model gfns: random RMP nibbles, liveness,
/// current VMPL, halt string, policy bits, and slot shapes.
fn abs_state_strategy(pages: usize, policy: usize, slots: usize) -> prop::Strategy<AbstractState> {
    let page = prop::tuple2(prop::ints(0u32..1 << 20), prop::bools())
        .map(|(raw, live)| PageAbs { packed: (raw & !0b11) | (raw % 3), live });
    let halted = prop::one_of(vec![
        prop::ints(0usize..1).map(|_| None),
        prop::ints(0usize..2).map(|i| Some(format!("halt-{i}"))),
    ]);
    let rest = prop::tuple3(
        prop::u8s(0..4),
        prop::vecs(prop::bools(), policy..policy + 1),
        prop::vecs(prop::u8s(0..3), slots..slots + 1),
    );
    prop::tuple3(prop::vecs(page, pages..pages + 1), halted, rest).map(
        |(pages, halted, (current, policy, slots))| AbstractState {
            pages,
            current,
            halted,
            policy,
            slots,
        },
    )
}

/// Every encoding of a state under its symmetry group: gfn-label
/// permutations crossed with the optional symmetric-VMPL swap.
fn orbit_encodings(state: &AbstractState, cfg: &ModelConfig) -> BTreeSet<Vec<u8>> {
    let mut out = BTreeSet::new();
    for perm in veil_adversary::model::permutations(state.pages.len()) {
        let p = state.with_pages_permuted(&perm);
        out.insert(p.encode());
        if let Some((a, b)) = cfg.symmetric_vmpls {
            out.insert(p.with_vmpls_swapped(a, b).encode());
        }
    }
    out
}

/// Satellite: canonicalization soundness, direction one — relabeling
/// gfns (and, in the symmetric configuration, swapping the symmetric
/// VMPL pair) never changes the canonical key.
#[test]
fn canonical_key_is_invariant_across_the_symmetry_orbit() {
    let ci = ModelConfig::ci();
    let sym = ModelConfig::symmetric();
    let strategy = prop::tuple2(
        abs_state_strategy(2, ci.policy_knobs.len(), ci.va_slots as usize),
        prop::usizes(0..2),
    );
    check("modelcheck_canonical_orbit", 64, &strategy, |(state, perm_idx)| {
        let key = state.canonical_key(&ci);
        let perm = if perm_idx == 0 { vec![0, 1] } else { vec![1, 0] };
        prop_assert_eq!(&state.with_pages_permuted(&perm).canonical_key(&ci), &key);

        // Same state under the symmetric configuration: the Vmpl2/Vmpl3
        // swap is also quotiented away.
        let skey = state.canonical_key(&sym);
        let swapped = state.with_vmpls_swapped(Vmpl::Vmpl2, Vmpl::Vmpl3);
        prop_assert_eq!(&swapped.canonical_key(&sym), &skey);
        // And the canonical key is itself an orbit member's encoding.
        prop_assert!(orbit_encodings(&state, &sym).contains(&skey));
        Ok(())
    });
}

/// Satellite: canonicalization soundness, direction two — states
/// collide on their canonical key *iff* they are in the same symmetry
/// orbit. A perturbed copy (one RMP nibble bit or the current VMPL)
/// must either be provably orbit-equivalent or get a distinct key.
#[test]
fn canonical_key_never_conflates_distinct_orbits() {
    let sym = ModelConfig::symmetric();
    let strategy = prop::tuple3(
        abs_state_strategy(2, sym.policy_knobs.len(), sym.va_slots as usize),
        prop::usizes(0..2),
        prop::usizes(2..21),
    );
    check("modelcheck_canonical_no_conflation", 64, &strategy, |(state, page, bit)| {
        let mut other = state.clone();
        if bit == 20 {
            other.current ^= 1;
        } else {
            other.pages[page].packed ^= 1 << bit;
        }
        let same_key = state.canonical_key(&sym) == other.canonical_key(&sym);
        let same_orbit = orbit_encodings(&state, &sym).contains(&other.encode());
        prop_assert_eq!(same_key, same_orbit);
        Ok(())
    });
}

/// Satellite: the three seeded machine mutations are each caught by
/// *exhaustive* exploration — not by luck of a fuzz schedule — with the
/// BFS guaranteeing the counterexample depth is minimal. The depths are
/// pinned: a deeper catch means the checker's frontier or the machine's
/// semantics shifted.
#[test]
fn seeded_mutations_are_caught_exhaustively_at_minimal_depth() {
    const EXPECTED: [(RmpMutation, usize); 3] = [
        (RmpMutation::SkipVmsaImmutable, 4),
        (RmpMutation::AllowPermEscalation, 3),
        (RmpMutation::AllowDoubleValidate, 3),
    ];
    for (mutation, depth) in EXPECTED {
        let mut cfg = CheckConfig::new(ModelConfig::mutation());
        cfg.mutation = Some(mutation);
        let report = explore(&cfg);
        let failure = report
            .failure
            .unwrap_or_else(|| panic!("{mutation:?} must be caught by exhaustive exploration"));
        assert_eq!(
            failure.depth, depth,
            "{mutation:?}: minimal counterexample depth moved (ops {:?})",
            failure.ops
        );
        assert!(
            failure.shrunk_ops.len() <= failure.depth,
            "{mutation:?}: shrinking must not grow the repro"
        );
        // The shrunk repro still reproduces on the mutated machine...
        assert!(
            replay(&cfg, &failure.shrunk_indices).is_err(),
            "{mutation:?}: shrunk repro lost the bug"
        );
        // ...and is green on the clean one.
        let clean = CheckConfig::new(ModelConfig::mutation());
        assert!(
            replay(&clean, &failure.shrunk_indices).is_ok(),
            "{mutation:?}: shrunk repro must be clean without the mutation"
        );
    }
}

/// The symmetric configuration (where the Vmpl2/Vmpl3 quotient is
/// actually active) stays machine == oracle on real reachable states —
/// depth-capped so the tier-1 gate stays fast; the full exhaustion runs
/// in the `tier1-modelcheck` CI job.
#[test]
fn symmetric_quotient_is_sound_on_reachable_states() {
    let mut cfg = CheckConfig::new(ModelConfig::symmetric());
    cfg.max_depth = Some(3);
    let report = explore(&cfg);
    assert!(report.failure.is_none(), "divergence under symmetry quotient: {:?}", report.failure);
    assert!(report.states > 1);
}
