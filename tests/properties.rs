//! Property-based tests over the core security invariants.
//!
//! These drive randomized operation sequences against the SNP model and
//! assert the invariants Veil's whole security argument rests on. The
//! cases come from `veil-testkit`'s deterministic engine; a failure
//! prints a `VEIL_TEST_SEED` line that replays it exactly.

use veil_snp::machine::{Machine, MachineConfig};
use veil_snp::perms::{Access, Cpl, Vmpl, VmplPerms};
use veil_snp::pt::{AddressSpace, PteFlags};
use veil_snp::rmp::PageState;
use veil_testkit::prop::{
    bools, bytes, check, one_of, tuple2, tuple3, tuple4, u64s, u8s, usizes, vecs, Strategy,
};
use veil_testkit::{prop_assert, prop_assert_eq};

const FRAMES: u64 = 64;

fn machine() -> Machine {
    Machine::new(MachineConfig { frames: FRAMES as usize, ..Default::default() })
}

/// One randomized RMP operation.
#[derive(Debug, Clone)]
enum RmpOp {
    Assign(u64),
    Reclaim(u64),
    Pvalidate { vmpl: usize, gfn: u64, validate: bool },
    Rmpadjust { executing: usize, gfn: u64, target: usize, perms: u8 },
    GuestWrite { vmpl: usize, gfn: u64 },
    HvWrite(u64),
}

fn op_strategy() -> Strategy<RmpOp> {
    one_of(vec![
        u64s(0..FRAMES).map(RmpOp::Assign),
        u64s(0..FRAMES).map(RmpOp::Reclaim),
        tuple3(usizes(0..4), u64s(0..FRAMES), bools())
            .map(|(vmpl, gfn, validate)| RmpOp::Pvalidate { vmpl, gfn, validate }),
        tuple4(usizes(0..4), u64s(0..FRAMES), usizes(0..4), u8s(0..16)).map(
            |(executing, gfn, target, perms)| RmpOp::Rmpadjust { executing, gfn, target, perms },
        ),
        tuple2(usizes(0..4), u64s(0..FRAMES)).map(|(vmpl, gfn)| RmpOp::GuestWrite { vmpl, gfn }),
        u64s(0..FRAMES).map(RmpOp::HvWrite),
    ])
}

/// No sequence of RMP operations — privileged or not — can ever give
/// a lower VMPL more access to a page than VMPL-0 granted it, let the
/// hypervisor read private memory, or corrupt validation state.
#[test]
fn rmp_invariants_hold_under_random_ops() {
    check("rmp_invariants_hold_under_random_ops", 64, &op_strategy().vec_of(1..200), |ops| {
        let mut m = machine();
        for op in ops {
            match op {
                RmpOp::Assign(gfn) => {
                    let _ = m.rmp_assign(gfn);
                }
                RmpOp::Reclaim(gfn) => {
                    let _ = m.rmp_reclaim(gfn);
                }
                RmpOp::Pvalidate { vmpl, gfn, validate } => {
                    let v = Vmpl::from_index(vmpl).unwrap();
                    let r = m.pvalidate(v, gfn, validate);
                    // PVALIDATE must refuse every level but VMPL-0.
                    if v != Vmpl::Vmpl0 {
                        prop_assert!(r.is_err());
                    }
                }
                RmpOp::Rmpadjust { executing, gfn, target, perms } => {
                    let e = Vmpl::from_index(executing).unwrap();
                    let t = Vmpl::from_index(target).unwrap();
                    let p = VmplPerms::from_bits_truncate(perms);
                    let before = m.rmp().entry(gfn).map(|en| en.perms(e));
                    let r = m.rmpadjust(e, gfn, t, p);
                    if r.is_ok() {
                        // Grant rule: the executor held every bit granted.
                        prop_assert!(before.unwrap().contains(p));
                        prop_assert!(e.dominates(t));
                    }
                    // An executor can never change its own level.
                    if e == t {
                        prop_assert!(r.is_err());
                    }
                }
                RmpOp::GuestWrite { vmpl, gfn } => {
                    let v = Vmpl::from_index(vmpl).unwrap();
                    let r = m.write(v, gfn * 4096, b"data");
                    // Writes succeed only where the RMP says so.
                    let allowed = m.rmp().check(gfn, v, Access::Write).is_ok();
                    prop_assert_eq!(r.is_ok(), allowed);
                }
                RmpOp::HvWrite(gfn) => {
                    let r = m.hv_write(gfn * 4096, b"host");
                    // The host only ever touches shared pages.
                    prop_assert_eq!(r.is_ok(), m.rmp().hypervisor_accessible(gfn));
                }
            }
            // Global invariants after every step:
            for gfn in 0..FRAMES {
                let e = m.rmp().entry(gfn).unwrap();
                // A page the hypervisor can access is never validated
                // guest memory.
                if m.rmp().hypervisor_accessible(gfn) {
                    prop_assert_eq!(e.state(), PageState::Shared);
                }
                // VMPL-0 retains full permissions on private pages.
                if e.state() == PageState::Validated {
                    prop_assert!(e.perms(Vmpl::Vmpl0).contains(VmplPerms::all()));
                }
            }
        }
        Ok(())
    });
}

/// Page-table mapping/translation agrees with a shadow oracle under
/// random map/unmap/protect sequences, and protected (VMPL-restricted)
/// final pages always fault for the restricted level.
#[test]
fn page_tables_match_oracle() {
    let ops = vecs(tuple4(u8s(0..3), u64s(0..32), u64s(0..16), bools()), 1..100);
    check("page_tables_match_oracle", 64, &ops, |ops| {
        let mut m = Machine::new(MachineConfig { frames: 256, ..Default::default() });
        let mut free: Vec<u64> = Vec::new();
        for gfn in 1..256u64 {
            m.rmp_assign(gfn).unwrap();
            m.pvalidate(Vmpl::Vmpl0, gfn, true).unwrap();
            for v in [Vmpl::Vmpl1, Vmpl::Vmpl2, Vmpl::Vmpl3] {
                m.rmpadjust(Vmpl::Vmpl0, gfn, v, VmplPerms::all()).unwrap();
            }
            free.push(gfn);
        }
        free.reverse();
        let aspace = AddressSpace::new(&mut m, Vmpl::Vmpl3, &mut free).unwrap();
        let mut oracle: std::collections::BTreeMap<u64, (u64, bool)> = Default::default();
        let mut data_frames: Vec<u64> = (0..16).map(|_| free.pop().unwrap()).collect();

        for (op, slot, frame_idx, writable) in ops {
            let vaddr = 0x4000_0000 + slot * 4096;
            match op {
                0 => {
                    let pfn = data_frames[frame_idx as usize % data_frames.len()];
                    let flags = if writable { PteFlags::user_data() } else { PteFlags::user_ro() };
                    let r = aspace.map(&mut m, Vmpl::Vmpl3, &mut free, vaddr, pfn, flags);
                    match oracle.entry(vaddr) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            prop_assert!(r.is_err(), "double map must fail");
                        }
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            if r.is_ok() {
                                slot.insert((pfn, writable));
                            }
                        }
                    }
                }
                1 => {
                    let r = aspace.unmap(&mut m, Vmpl::Vmpl3, vaddr);
                    match oracle.remove(&vaddr) {
                        Some((pfn, _)) => prop_assert_eq!(r.unwrap(), pfn),
                        None => prop_assert!(r.is_err()),
                    }
                }
                _ => {
                    let flags = if writable { PteFlags::user_data() } else { PteFlags::user_ro() };
                    let r = aspace.protect(&mut m, Vmpl::Vmpl3, vaddr, flags);
                    if let Some(entry) = oracle.get_mut(&vaddr) {
                        prop_assert!(r.is_ok());
                        entry.1 = writable;
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
            }
            // Oracle agreement on every mapped slot.
            for (va, (pfn, w)) in &oracle {
                let (got_pfn, _) = aspace.translate(&m, *va).unwrap();
                prop_assert_eq!(got_pfn, *pfn);
                let write_ok =
                    aspace.access(&m, *va, Vmpl::Vmpl3, Cpl::Cpl3, Access::Write).is_ok();
                prop_assert_eq!(write_ok, *w);
            }
        }
        let _ = &mut data_frames;
        Ok(())
    });
}

/// Sealed-channel round trips never lose or corrupt data, for any
/// payloads, and cross-channel messages never authenticate.
#[test]
fn secure_channel_roundtrip() {
    check("secure_channel_roundtrip", 64, &vecs(bytes(0..200), 1..20), |msgs| {
        use veil_core::remote::SecureChannel;
        let mut a = SecureChannel::new([1; 32]);
        let mut b = SecureChannel::new([1; 32]);
        let mut eve = SecureChannel::new([2; 32]);
        for msg in &msgs {
            let sealed = a.seal(msg);
            prop_assert!(eve.open(&sealed).is_err(), "wrong key must fail");
            prop_assert_eq!(&b.open(&sealed).unwrap(), msg);
        }
        Ok(())
    });
}

/// LZ77 compression round-trips arbitrary data (the Fig. 5 compute
/// kernel must be *correct*, not just costed).
#[test]
fn lz77_roundtrip() {
    check("lz77_roundtrip", 64, &bytes(0..4096), |data| {
        use veil_workloads::compress::{lz77_compress, lz77_decompress};
        let c = lz77_compress(&data);
        prop_assert_eq!(lz77_decompress(&c).unwrap(), data);
        Ok(())
    });
}
